/**
 * @file
 * SM issue-path equivalence gate: the SoA+mask scheduling fast path
 * must retrace exactly the trajectory of the linear reference scan.
 * Two layers of evidence, same pattern as sched_test:
 *
 *  - tick-level: two standalone SM rigs — one per SmIssuePath — are
 *    driven in lockstep over a synthetic warp program (coalesced and
 *    divergent loads, stores, atomics, divergent-length compute,
 *    more warps than resident slots) and must agree on busy(),
 *    nextWakeTick() and active-cycle count at EVERY serviced tick,
 *    then on the full stats dump at the end;
 *  - full-run: complete primitive runs under both paths produce
 *    byte-identical stats dumps for every primitive on both systems.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "common/bits.hh"
#include "gpu/sm.hh"
#include "harness/runner.hh"
#include "mem/mem_system.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

using namespace scusim;
using namespace scusim::harness;
using gpu::SmIssuePath;
using gpu::StreamingMultiprocessor;

namespace
{

/** Force every SM built during the guard's lifetime onto @p path. */
class IssuePathGuard
{
  public:
    explicit IssuePathGuard(SmIssuePath p)
    {
        StreamingMultiprocessor::overrideDefaultIssuePath(p);
    }
    ~IssuePathGuard()
    {
        StreamingMultiprocessor::clearDefaultIssuePathOverride();
    }
};

std::string
statsDumpFor(const RunConfig &base, SmIssuePath path)
{
    IssuePathGuard guard(path);
    RunConfig cfg = base;
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    RunResult r = runPrimitive(cfg);
    EXPECT_TRUE(r.validated)
        << to_string(cfg.primitive) << " on " << cfg.systemName
        << " failed functional validation";
    EXPECT_FALSE(os.str().empty());
    return os.str();
}

class SmPathEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Primitive, const char *>>
{
};

TEST_P(SmPathEquivalence, SoaAndReferenceDumpIdenticalStats)
{
    const auto [prim, system] = GetParam();

    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.mode = ScuMode::ScuEnhanced;
    cfg.dataset = "cond";
    cfg.scale = 0.01;

    const std::string soa =
        statsDumpFor(cfg, SmIssuePath::SoaMasked);
    const std::string ref =
        statsDumpFor(cfg, SmIssuePath::Reference);
    ASSERT_EQ(soa.size(), ref.size());
    EXPECT_EQ(soa, ref)
        << "the SoA+mask issue path changed the simulation";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesBothSystems, SmPathEquivalence,
    ::testing::Combine(::testing::Values(Primitive::Bfs,
                                         Primitive::Sssp,
                                         Primitive::Pr),
                       ::testing::Values("GTX980", "TX1")),
    [](const auto &info) {
        return to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

TEST(SmIssuePath_, DefaultResolutionOrder)
{
    ::unsetenv("SCUSIM_SM_PATH");
    EXPECT_EQ(StreamingMultiprocessor::defaultIssuePath(),
              SmIssuePath::SoaMasked);
    ::setenv("SCUSIM_SM_PATH", "reference", 1);
    EXPECT_EQ(StreamingMultiprocessor::defaultIssuePath(),
              SmIssuePath::Reference);
    ::setenv("SCUSIM_SM_PATH", "soa", 1);
    EXPECT_EQ(StreamingMultiprocessor::defaultIssuePath(),
              SmIssuePath::SoaMasked);
    // The process-wide override out-ranks the environment.
    ::setenv("SCUSIM_SM_PATH", "soa", 1);
    StreamingMultiprocessor::overrideDefaultIssuePath(
        SmIssuePath::Reference);
    EXPECT_EQ(StreamingMultiprocessor::defaultIssuePath(),
              SmIssuePath::Reference);
    StreamingMultiprocessor::clearDefaultIssuePathOverride();
    ::unsetenv("SCUSIM_SM_PATH");
}

/**
 * A standalone SM on its own memory system, stat tree and
 * Simulation, latched to one issue path at construction.
 */
struct SmRig
{
    explicit SmRig(SmIssuePath path)
        : guard(path), params(gpu::GpuParams::tx1()),
          clk(params.freqHz), root("t"),
          mem(params.memsys, clk, &root),
          sm(params, 0, &mem, &root, &sim)
    {
        sim.addClocked(&sm, "sm0");
    }

    std::string
    dump()
    {
        std::ostringstream os;
        root.dumpAll(os);
        return os.str();
    }

    IssuePathGuard guard; ///< active while `sm` resolves its path
    gpu::GpuParams params;
    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    mem::MemSystem mem;
    StreamingMultiprocessor sm;
};

/**
 * Deterministic synthetic warp @p i: a mix of compute runs,
 * coalesced/divergent loads, stores with partial lane masks and
 * atomics, long enough to overlap memory latencies across warps.
 */
void
buildTestWarp(std::uint64_t i, gpu::Warp &out)
{
    const unsigned threads = (i % 5 == 4) ? 17 : 32;
    out.threads = threads;
    const std::uint64_t full = maskLow(threads);

    auto mem_instr = [&](gpu::ThreadOp::Kind kind, std::uint64_t mask,
                         auto addr_of) {
        gpu::WarpInstr wi;
        wi.kind = kind;
        wi.laneMask = mask & full;
        wi.laneAddrs.assign(threads, 0);
        for (std::uint64_t m = wi.laneMask; m; m &= m - 1) {
            const unsigned l = ctz64(m);
            wi.laneAddrs[l] = addr_of(l);
        }
        out.instrs.push_back(std::move(wi));
    };

    gpu::WarpInstr c;
    c.kind = gpu::ThreadOp::Kind::Compute;
    c.computeCount = 1 + static_cast<std::uint32_t>(i % 4);
    out.instrs.push_back(c);

    switch (i % 4) {
    case 0: // coalesced load stream
        mem_instr(gpu::ThreadOp::Kind::Load, full, [&](unsigned l) {
            return Addr{0x100000} + i * 0x80 + l * 4;
        });
        break;
    case 1: // divergent load scatter
        mem_instr(gpu::ThreadOp::Kind::Load, full, [&](unsigned l) {
            return (mixBits(i * 64 + l) & 0xFFFFF) * 64;
        });
        break;
    case 2: // partial-mask store (odd lanes only)
        mem_instr(gpu::ThreadOp::Kind::Store, 0xAAAAAAAAAAAAAAAAull,
                  [&](unsigned l) {
                      return Addr{0x400000} + i * 0x200 + l * 8;
                  });
        break;
    default: // atomics with colliding addresses
        mem_instr(gpu::ThreadOp::Kind::Atomic, full, [&](unsigned l) {
            return Addr{0x800000} + (mixBits(l) % 7) * 4;
        });
        break;
    }

    gpu::WarpInstr c2;
    c2.kind = gpu::ThreadOp::Kind::Compute;
    c2.computeCount = 2;
    out.instrs.push_back(c2);
}

gpu::WarpSource
makeSource(std::uint64_t count)
{
    auto next = std::make_shared<std::uint64_t>(0);
    return [next, count](gpu::Warp &out) {
        if (*next >= count)
            return false;
        buildTestWarp(*next, out);
        ++*next;
        return true;
    };
}

TEST(SmTickEquivalence, LockstepTrajectoryAndFinalStatsMatch)
{
    SmRig ref(SmIssuePath::Reference);
    SmRig soa(SmIssuePath::SoaMasked);
    ASSERT_EQ(ref.sm.issuePath(), SmIssuePath::Reference);
    ASSERT_EQ(soa.sm.issuePath(), SmIssuePath::SoaMasked);

    // 3x the resident-slot count so retirement compaction and refill
    // churn continuously.
    const std::uint64_t warps = 3 * ref.params.maxResidentWarps();
    gpu::KernelStats ksRef, ksSoa;
    ref.sm.beginKernel(makeSource(warps), &ksRef);
    soa.sm.beginKernel(makeSource(warps), &ksSoa);

    Tick now = 0;
    std::uint64_t serviced = 0;
    for (std::uint64_t iter = 0; iter < 50'000'000; ++iter) {
        const Tick wr = ref.sm.nextWakeTick();
        ASSERT_EQ(wr, soa.sm.nextWakeTick()) << "tick " << now;
        const bool br = ref.sm.busy(now);
        ASSERT_EQ(br, soa.sm.busy(now)) << "tick " << now;
        if (br) {
            ref.sm.tick(now);
            soa.sm.tick(now);
            ASSERT_EQ(ref.sm.activeCycles(), soa.sm.activeCycles())
                << "tick " << now;
            ++serviced;
            ++now;
            continue;
        }
        if (wr == tickNever)
            break;
        now = std::max(now + 1, wr); // fast-forward a pure stall
    }
    EXPECT_GT(serviced, warps); // the drive actually ran work

    ref.sm.endKernel(now);
    soa.sm.endKernel(now);

    EXPECT_EQ(ksRef.warps, ksSoa.warps);
    EXPECT_EQ(ksRef.threads, ksSoa.threads);
    EXPECT_EQ(ksRef.warpInstrs, ksSoa.warpInstrs);
    EXPECT_EQ(ksRef.threadInstrs, ksSoa.threadInstrs);
    EXPECT_EQ(ksRef.warpMemInstrs, ksSoa.warpMemInstrs);
    EXPECT_EQ(ksRef.memTransactions, ksSoa.memTransactions);
    EXPECT_EQ(ksRef.memLanes, ksSoa.memLanes);

    const std::string dr = ref.dump();
    const std::string ds = soa.dump();
    ASSERT_FALSE(dr.empty());
    EXPECT_EQ(dr, ds)
        << "issue paths diverged somewhere the per-tick probes "
           "don't reach";
}

TEST(SmTickEquivalence, WarpArrivingBlockedIsPromotedIdentically)
{
    // A warp whose handoff state starts blocked in the future
    // exercises the blocked-at-refill branch of the mask
    // bookkeeping.
    for (SmIssuePath path :
         {SmIssuePath::Reference, SmIssuePath::SoaMasked}) {
        SmRig rig(path);
        auto next = std::make_shared<int>(0);
        rig.sm.beginKernel(
            [next](gpu::Warp &out) {
                if ((*next)++ > 0)
                    return false;
                gpu::WarpInstr c;
                c.kind = gpu::ThreadOp::Kind::Compute;
                c.computeCount = 1;
                out.instrs.push_back(c);
                out.threads = 32;
                out.blockedUntil = 25;
                return true;
            },
            nullptr);
        EXPECT_FALSE(rig.sm.busy(0));
        EXPECT_EQ(rig.sm.nextWakeTick(), 25u);
        EXPECT_TRUE(rig.sm.busy(25));
        rig.sm.tick(25); // issues the single compute op
        // One dependent-latency stall later the warp retires.
        const Tick done = 25 + rig.params.depIssueLatency;
        EXPECT_EQ(rig.sm.nextWakeTick(), done);
        rig.sm.tick(done);
        EXPECT_EQ(rig.sm.nextWakeTick(), tickNever);
        rig.sm.endKernel(done);
        EXPECT_EQ(rig.sm.activeCycles(), 2.0);
    }
}

} // namespace
