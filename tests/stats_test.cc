/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace scusim::stats;

TEST(Stats, ScalarArithmetic)
{
    StatGroup g("root");
    Scalar s(&g, "count", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("root");
    Scalar a(&g, "a", ""), b(&g, "b", "");
    Formula ratio(&g, "ratio", "a per b", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0);
    a += 6;
    b += 2;
    EXPECT_DOUBLE_EQ(ratio.value(), 3);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("root");
    Distribution d(&g, "lat", "latencies", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(95);
    d.sample(150); // overflow bucket
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 265);
    EXPECT_DOUBLE_EQ(d.mean(), 66.25);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatGroup g("root");
    Distribution d(&g, "x", "", 0, 10, 5);
    d.sample(2, 3);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2);
}

TEST(Stats, GroupHierarchyPaths)
{
    StatGroup root("sys");
    StatGroup child("l2", &root);
    EXPECT_EQ(child.path(), "sys.l2");
    Scalar s(&child, "hits", "");
    s += 4;
    EXPECT_DOUBLE_EQ(root.lookup("l2.hits"), 4);
}

TEST(Stats, LookupMissingPanics)
{
    StatGroup root("sys");
    EXPECT_DEATH(root.lookup("nope"), "not found");
}

TEST(Stats, DumpContainsEverything)
{
    StatGroup root("sys");
    StatGroup child("dram", &root);
    Scalar a(&root, "ticks", "total ticks");
    Scalar b(&child, "reads", "read count");
    a += 10;
    b += 20;
    std::ostringstream os;
    root.dumpAll(os);
    std::string out = os.str();
    EXPECT_NE(out.find("sys.ticks 10"), std::string::npos);
    EXPECT_NE(out.find("sys.dram.reads 20"), std::string::npos);
    EXPECT_NE(out.find("# total ticks"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("sys");
    StatGroup child("c", &root);
    Scalar a(&root, "a", ""), b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0);
    EXPECT_DOUBLE_EQ(b.value(), 0);
}
