/**
 * @file
 * Tier-1 gate for the dataset store (`src/store`): the `.scug`
 * container round-trips byte-identically, damaged files (bad magic,
 * wrong schema, truncation, bit rot under the fingerprint) are
 * rejected and quarantined rather than misread, concurrent readers
 * share one file safely, and — the acceptance criterion of the
 * subsystem — BFS/SSSP/PR stats dumps are byte-identical whether the
 * graph is in-memory, mmap'd, or traversed through the out-of-core
 * residency window on both modeled systems.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr.hh"
#include "graph/datasets.hh"
#include "harness/runner.hh"
#include "store/format.hh"
#include "store/mapped_graph.hh"
#include "store/store.hh"
#include "store/writer.hh"

using namespace scusim;
using namespace scusim::store;

namespace
{

/** Fresh store directory + SCUSIM_STORE_DIR for one test body. */
class StoreDirGuard
{
  public:
    explicit StoreDirGuard(const char *name)
        : dir(::testing::TempDir() + "scusim_store_" + name)
    {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        ::setenv("SCUSIM_STORE_DIR", dir.c_str(), 1);
    }

    ~StoreDirGuard()
    {
        ::unsetenv("SCUSIM_STORE_DIR");
        ::unsetenv("SCUSIM_STORE_BUDGET");
        std::filesystem::remove_all(dir);
    }

    const std::string dir;
};

graph::CsrGraph
testGraph()
{
    return graph::makeDataset("cond", 0.02, 3);
}

template <typename T>
std::vector<T>
vec(std::span<const T> s)
{
    return {s.begin(), s.end()};
}

/** Assert @p got exposes exactly the same CSR arrays as @p want. */
void
expectSameGraph(const graph::CsrGraph &got,
                const graph::CsrGraph &want)
{
    ASSERT_EQ(got.numNodes(), want.numNodes());
    ASSERT_EQ(got.numEdges(), want.numEdges());
    EXPECT_EQ(vec(got.adjacencyOffsets()),
              vec(want.adjacencyOffsets()));
    EXPECT_EQ(vec(got.edgeArray()), vec(want.edgeArray()));
    EXPECT_EQ(vec(got.weightArray()), vec(want.weightArray()));
}

/** Flip one byte at @p off in file @p path. */
void
corruptByte(const std::string &path, std::uint64_t off)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(off));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&c, 1);
}

} // namespace

// ----------------------------------------------------------- format

TEST(StoreFormat, HeaderEncodeDecodeRoundTrip)
{
    ScugHeader h;
    std::memcpy(h.magic, scugMagic, sizeof h.magic);
    h.flags = scugFlagWeights;
    h.numNodes = 6;
    h.numEdges = 9;
    h.offsetsOff = scugPageBytes;
    h.offsetsBytes = (h.numNodes + 1) * 8;
    h.dstOff = pageAlign(h.offsetsOff + h.offsetsBytes);
    h.dstBytes = h.numEdges * 4;
    h.weightOff = pageAlign(h.dstOff + h.dstBytes);
    h.weightBytes = h.numEdges * 4;
    h.fingerprint = 0x0123456789ABCDEFull;

    const std::string wire = encodeHeader(h);
    ASSERT_EQ(wire.size(), scugHeaderBytes);
    ScugHeader back;
    std::string why;
    ASSERT_TRUE(decodeHeader(wire.data(), wire.size(), back, 0,
                             &why))
        << why;
    EXPECT_EQ(back.numNodes, h.numNodes);
    EXPECT_EQ(back.numEdges, h.numEdges);
    EXPECT_EQ(back.flags, h.flags);
    EXPECT_EQ(back.fingerprint, h.fingerprint);
    EXPECT_EQ(back.dstOff, h.dstOff);
}

TEST(StoreFormat, ParseByteSizeSuffixes)
{
    EXPECT_EQ(parseByteSize("4096"), 4096u);
    EXPECT_EQ(parseByteSize("64k"), 64u << 10);
    EXPECT_EQ(parseByteSize("16M"), 16u << 20);
    EXPECT_EQ(parseByteSize("1G"), 1ull << 30);
    EXPECT_EQ(parseByteSize(""), 0u);
    EXPECT_EQ(parseByteSize("12q"), 0u);
    EXPECT_EQ(parseByteSize("k"), 0u);
}

// ----------------------------------------------- writer round trips

TEST(StoreWriter, MmapRoundTripIsByteIdentical)
{
    StoreDirGuard sd("roundtrip");
    const graph::CsrGraph g = testGraph();
    const std::string path = sd.dir + "/g.scug";

    const PackResult pr = writeStore(g, path);
    ASSERT_TRUE(pr.ok) << pr.error;
    EXPECT_EQ(pr.fingerprint, graphFingerprint(g));

    std::string err;
    auto mg = MappedGraph::open(path, {}, &err);
    ASSERT_TRUE(mg) << err;
    EXPECT_EQ(mg->fingerprint(), pr.fingerprint);
    EXPECT_FALSE(mg->windowed());
    expectSameGraph(mg->graph(), g);
    if (mg->mode() == MapMode::Mmap) {
        EXPECT_TRUE(mg->graph().isView());
    }
}

TEST(StoreWriter, HeapCopyFallbackIsByteIdentical)
{
    StoreDirGuard sd("heapcopy");
    const graph::CsrGraph g = testGraph();
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(g, path).ok);

    OpenOptions oo;
    oo.forceCopy = true;
    std::string err;
    auto mg = MappedGraph::open(path, oo, &err);
    ASSERT_TRUE(mg) << err;
    EXPECT_EQ(mg->mode(), MapMode::HeapCopy);
    expectSameGraph(mg->graph(), g);
}

TEST(StoreWriter, PackIsDeterministic)
{
    StoreDirGuard sd("det");
    const graph::CsrGraph g = testGraph();
    const std::string a = sd.dir + "/a.scug";
    const std::string b = sd.dir + "/b.scug";
    ASSERT_TRUE(writeStore(g, a).ok);
    ASSERT_TRUE(writeStore(g, b).ok);
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    std::stringstream sa, sb;
    sa << fa.rdbuf();
    sb << fb.rdbuf();
    EXPECT_EQ(sa.str(), sb.str());
}

// ----------------------------------------------------- damage gates

TEST(MappedGraphTest, RejectsBadMagic)
{
    StoreDirGuard sd("badmagic");
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(testGraph(), path).ok);
    corruptByte(path, 0);
    std::string err;
    EXPECT_FALSE(MappedGraph::open(path, {}, &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(MappedGraphTest, RejectsWrongSchema)
{
    StoreDirGuard sd("badschema");
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(testGraph(), path).ok);
    corruptByte(path, 8); // first byte of the u32 schema field
    std::string err;
    EXPECT_FALSE(MappedGraph::open(path, {}, &err));
    EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

TEST(MappedGraphTest, RejectsFingerprintMismatch)
{
    StoreDirGuard sd("rot");
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(testGraph(), path).ok);
    ScugHeader h;
    ASSERT_TRUE(readStoreHeader(path, h));
    // One flipped bit inside the destination section: only the
    // fingerprint can notice.
    corruptByte(path, h.dstOff + h.dstBytes / 2);
    std::string err;
    EXPECT_FALSE(MappedGraph::open(path, {}, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
    // Skipping verification is explicit opt-out, not the default.
    OpenOptions lax;
    lax.verifyFingerprint = false;
    EXPECT_TRUE(MappedGraph::open(path, lax, &err)) << err;
}

TEST(MappedGraphTest, RejectsTruncatedFile)
{
    StoreDirGuard sd("trunc");
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(testGraph(), path).ok);
    const auto bytes = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, bytes - scugPageBytes);
    std::string err;
    EXPECT_FALSE(MappedGraph::open(path, {}, &err));
    // A mid-write crash of a *non-atomic* writer looks the same as
    // truncation; the atomic tmp+rename writer never exposes it, but
    // the loader still has to reject the shape.
    std::filesystem::resize_file(path, scugHeaderBytes / 2);
    EXPECT_FALSE(MappedGraph::open(path, {}, &err));
}

TEST(StoreRegistry, DamagedStoreIsQuarantinedAndRepacked)
{
    StoreDirGuard sd("quarantine");
    const std::uint64_t before = storeQuarantinedCount();
    auto mg = openDataset("cond", 0.02, 3);
    ASSERT_TRUE(mg);
    const std::string path =
        datasetStorePath(sd.dir, "cond", 0.02, 3);
    ASSERT_TRUE(std::filesystem::exists(path));
    mg.reset();

    corruptByte(path, 0); // destroy the magic
    auto again = openDataset("cond", 0.02, 3);
    ASSERT_TRUE(again); // quarantined, then repacked
    EXPECT_EQ(storeQuarantinedCount(), before + 1);
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
    expectSameGraph(again->graph(), testGraph());
}

TEST(StoreRegistry, CrashedWriterTempFileIsIgnored)
{
    StoreDirGuard sd("crashtmp");
    const std::string path =
        datasetStorePath(sd.dir, "cond", 0.02, 3);
    // A writer killed mid-stream leaves only its process-unique temp
    // file; the store slot itself reads as a clean miss.
    std::ofstream(path + ".tmp.99999") << "partial garbage";
    auto mg = openDataset("cond", 0.02, 3);
    ASSERT_TRUE(mg);
    expectSameGraph(mg->graph(), testGraph());
    EXPECT_TRUE(std::filesystem::exists(path));
}

// ------------------------------------------------ concurrent access

TEST(MappedGraphTest, TwoConcurrentReadersSeeTheSameBytes)
{
    StoreDirGuard sd("readers");
    const graph::CsrGraph g = testGraph();
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(g, path).ok);

    std::string e1, e2;
    auto a = MappedGraph::open(path, {}, &e1);
    auto b = MappedGraph::open(path, {}, &e2);
    ASSERT_TRUE(a) << e1;
    ASSERT_TRUE(b) << e2;

    auto sumAll = [](const graph::CsrGraph &gr) {
        std::uint64_t s = 0;
        for (NodeId u = 0; u < gr.numNodes(); ++u) {
            for (NodeId v : gr.neighbors(u))
                s += v;
            for (Weight w : gr.edgeWeights(u))
                s += w;
        }
        return s;
    };
    std::uint64_t sa = 0, sb = 0;
    std::thread ta([&] { sa = sumAll(a->graph()); });
    std::thread tb([&] { sb = sumAll(b->graph()); });
    ta.join();
    tb.join();
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(sa, sumAll(g));
}

// --------------------------------------------------- out of core

TEST(MappedGraphTest, WindowedTraversalEqualsInMemory)
{
    StoreDirGuard sd("window");
    const graph::CsrGraph g = testGraph();
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(g, path).ok);

    // A budget far below the edge-section bytes: the graph "exceeds
    // SCUSIM_STORE_BUDGET" and must still traverse completely.
    const std::uint64_t edgeBytes = g.numEdges() * 8;
    OpenOptions oo;
    oo.budgetBytes = 16 << 10;
    ASSERT_LT(oo.budgetBytes, edgeBytes);
    std::string err;
    auto mg = MappedGraph::open(path, oo, &err);
    ASSERT_TRUE(mg) << err;
    if (mg->mode() != MapMode::Mmap)
        GTEST_SKIP() << "no mmap on this host; windowing disabled";
    ASSERT_TRUE(mg->windowed());

    const graph::CsrGraph &w = mg->graph();
    ASSERT_EQ(w.numNodes(), g.numNodes());
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        ASSERT_EQ(vec(w.neighbors(u)), vec(g.neighbors(u)))
            << "row " << u;
        ASSERT_EQ(vec(w.edgeWeights(u)), vec(g.edgeWeights(u)))
            << "row " << u;
    }
    const WindowStats ws = mg->windowStats();
    EXPECT_GT(ws.advances, 0u);
    EXPECT_GT(ws.prefetchedBytes, 0u);
    EXPECT_EQ(ws.windowBytes, oo.budgetBytes);
}

// --------------------------------------- end-to-end byte identity

TEST(StoreHarness, StatsDumpsByteIdenticalAcrossLoadersOnBothSystems)
{
    StoreDirGuard sd("identity");
    const graph::CsrGraph g = testGraph();
    const std::string path = sd.dir + "/g.scug";
    ASSERT_TRUE(writeStore(g, path).ok);

    std::string err;
    auto mmapped = MappedGraph::open(path, {}, &err);
    ASSERT_TRUE(mmapped) << err;
    OpenOptions oo;
    oo.budgetBytes = 16 << 10;
    auto windowed = MappedGraph::open(path, oo, &err);
    ASSERT_TRUE(windowed) << err;

    using harness::Primitive;
    for (const char *sys : {"GTX980", "TX1"}) {
        for (Primitive p :
             {Primitive::Bfs, Primitive::Sssp, Primitive::Pr}) {
            harness::RunConfig cfg;
            cfg.systemName = sys;
            cfg.primitive = p;
            cfg.mode = harness::ScuMode::ScuEnhanced;
            cfg.dataset = "cond";
            cfg.scale = 0.02;
            cfg.seed = 3;

            auto dumpWith = [&](const graph::CsrGraph &gr) {
                std::ostringstream os;
                harness::RunConfig c = cfg;
                c.dumpStatsTo = &os;
                harness::RunResult r = harness::runPrimitive(c, gr);
                EXPECT_TRUE(r.validated)
                    << sys << "/" << harness::to_string(p);
                return os.str();
            };
            const std::string inMem = dumpWith(g);
            EXPECT_EQ(dumpWith(mmapped->graph()), inMem)
                << "mmap diverged: " << sys << "/"
                << harness::to_string(p);
            EXPECT_EQ(dumpWith(windowed->graph()), inMem)
                << "windowed diverged: " << sys << "/"
                << harness::to_string(p);
        }
    }
}

TEST(StoreHarness, CachedDatasetUsesTheStoreWhenConfigured)
{
    StoreDirGuard sd("cached");
    // A (name, scale, seed) triple no other test shares: the
    // process-wide dataset memo would otherwise serve an entry built
    // before this test set SCUSIM_STORE_DIR.
    const graph::CsrGraph &g =
        harness::cachedDataset("ca", 0.013, 77);
    const std::string path =
        datasetStorePath(sd.dir, "ca", 0.013, 77);
    EXPECT_TRUE(std::filesystem::exists(path));
    expectSameGraph(g, graph::makeDataset("ca", 0.013, 77));
}
