/**
 * @file
 * Trace subsystem tests: ring-buffer overflow semantics, runtime
 * category masking, the Chrome trace-event exporter, the windowed
 * Timeseries stat, and — most importantly — the guarantee that
 * enabling tracing never perturbs the determinism gate's
 * byte-identical statistics dumps.
 *
 * Everything here must pass in both SCUSIM_TRACE=OFF and =ON builds:
 * channel methods are exercised directly (not through the macros), so
 * the data-structure contracts hold regardless of whether emission
 * sites are compiled in.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "stats/timeseries.hh"
#include "trace/chrome_export.hh"
#include "trace/trace.hh"

using namespace scusim;
using namespace scusim::trace;

namespace
{

TraceConfig
smallRing(std::size_t capacity, std::uint32_t mask = maskAll)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.mask = mask;
    cfg.ringCapacity = capacity;
    return cfg;
}

/**
 * Minimal structural JSON check: braces/brackets balance outside of
 * string literals and the document is a single object. Good enough to
 * catch the classic exporter bugs (trailing commas are also rejected
 * by real parsers, so spot-check those separately).
 */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false;
    bool escaped = false;
    for (char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !inString;
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(TraceChannel, RingOverflowKeepsTheNewestEvents)
{
    TraceSink sink(smallRing(4));
    TraceChannel *ch = sink.channel("sm0");
    ASSERT_NE(ch, nullptr);

    for (std::uint64_t i = 0; i < 10; ++i)
        ch->instant(Category::Kernel, "e" + std::to_string(i), i * 100,
                    i);

    EXPECT_EQ(ch->size(), 4u);
    EXPECT_EQ(ch->recorded(), 10u);
    EXPECT_EQ(ch->dropped(), 6u);

    const auto events = ch->snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first, and only the newest four survive the overflow.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].name, "e" + std::to_string(i + 6));
        EXPECT_EQ(events[i].arg, i + 6);
        EXPECT_EQ(events[i].start, (i + 6) * 100);
    }
}

TEST(TraceChannel, MaskedOffCategoriesAreDroppedAtTheEmissionSite)
{
    TraceSink sink(
        smallRing(16, static_cast<std::uint32_t>(Category::Mem)));
    TraceChannel *ch = sink.channel("memsys");

    EXPECT_FALSE(ch->wants(Category::Kernel));
    EXPECT_FALSE(ch->wants(Category::Sim));
    EXPECT_TRUE(ch->wants(Category::Mem));

    ch->span(Category::Kernel, "kernel", 0, 10);
    ch->instant(Category::Sim, "housekeeping", 5);
    EXPECT_EQ(ch->recorded(), 0u) << "masked categories must not "
                                     "count as recorded";

    ch->counter(Category::Mem, "bytes", 7, 128);
    EXPECT_EQ(ch->recorded(), 1u);

    // The macros must tolerate a null channel in every build mode.
    TraceChannel *none = nullptr;
    TRACE_EVENT_SPAN(none, Category::Sim, "noop", 0, 1, 0);
    TRACE_EVENT_INSTANT(none, Category::Sim, "noop", 0, 0);
    TRACE_EVENT_COUNTER(none, Category::Sim, "noop", 0, 0);
}

TEST(TraceChannel, SpanClampsNegativeDurations)
{
    TraceSink sink(smallRing(4));
    TraceChannel *ch = sink.channel("scu");
    ch->span(Category::ScuOp, "backwards", 100, 40);
    const auto events = ch->snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].start, 100u);
    EXPECT_EQ(events[0].dur, 0u);
}

TEST(TraceSink, ChannelLookupIsGetOrCreateInCreationOrder)
{
    TraceSink sink(smallRing(8));
    TraceChannel *sim = sink.channel("sim");
    TraceChannel *sm0 = sink.channel("sm0");
    TraceChannel *again = sink.channel("sim");
    EXPECT_EQ(sim, again);
    EXPECT_NE(sim, sm0);

    const auto chans = sink.channels();
    ASSERT_EQ(chans.size(), 2u);
    EXPECT_EQ(chans[0]->name(), "sim");
    EXPECT_EQ(chans[1]->name(), "sm0");
}

TEST(TraceSink, TailDumpShowsNewestEventsPerChannel)
{
    TraceSink sink(smallRing(4));
    TraceChannel *ch = sink.channel("scu");
    for (std::uint64_t i = 0; i < 6; ++i)
        ch->instant(Category::ScuOp, "op" + std::to_string(i), i);

    const std::string tail = sink.tailDump(2);
    EXPECT_NE(tail.find("scu"), std::string::npos);
    EXPECT_NE(tail.find("6 recorded"), std::string::npos);
    EXPECT_NE(tail.find("op5"), std::string::npos);
    EXPECT_EQ(tail.find("op0"), std::string::npos)
        << "overwritten events must not appear in the tail";
}

TEST(TraceConfig, CategoryMaskParsing)
{
    EXPECT_EQ(parseCategoryMask("all"), maskAll);
    EXPECT_EQ(parseCategoryMask("none"), 0u);
    EXPECT_EQ(parseCategoryMask(""), 0u);
    EXPECT_EQ(parseCategoryMask("0x3"), 3u);
    EXPECT_EQ(parseCategoryMask("mem,fifo"),
              static_cast<std::uint32_t>(Category::Mem) |
                  static_cast<std::uint32_t>(Category::Fifo));
    EXPECT_EQ(parseCategoryMask("kernel,scu-op,mem,fifo,sim"), 0x1fu);
}

TEST(ChromeExport, ProducesBalancedJsonWithStableTracks)
{
    TraceSink sink(smallRing(64));
    // Creation order fixes pid/tid assignment; mimic the harness
    // wiring order.
    TraceChannel *sim = sink.channel("sim");
    TraceChannel *sm0 = sink.channel("sm0");
    TraceChannel *scu = sink.channel("scu");
    TraceChannel *mem = sink.channel("memsys");

    sim->span(Category::Sim, "run", 0, 1000);
    sm0->span(Category::Kernel, "bfs_iter", 10, 200, 42);
    sm0->instant(Category::Kernel, "done", 200);
    scu->span(Category::ScuOp, "filter \"quoted\"", 20, 80);
    mem->counter(Category::Mem, "dram_bytes", 100, 4096);

    std::ostringstream os;
    writeChromeTrace(os, sink);
    const std::string json = os.str();

    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_EQ(json.find("],"), std::string::npos)
        << "no trailing content after the traceEvents array";
    EXPECT_EQ(json.find(",\n  ]"), std::string::npos)
        << "no trailing comma before the array close";

    // One thread_name track per channel, one process_name per device.
    EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 4u);
    EXPECT_EQ(countOccurrences(json, "\"process_name\""), 4u);
    for (const char *track : {"\"sim\"", "\"sm0\"", "\"scu\"",
                              "\"memsys\""})
        EXPECT_NE(json.find(track), std::string::npos)
            << "missing track " << track;

    // Event phases: complete spans, instants, counters.
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), 3u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"i\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"C\""), 1u);

    // Ticks land in "ts", quotes in names are escaped.
    EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
    EXPECT_NE(json.find("filter \\\"quoted\\\""), std::string::npos);
}

TEST(ChromeExport, MultiDeviceChannelsGetDistinctPidBlocks)
{
    TraceSink sink(smallRing(64));
    // Multi-device wiring order: per-device channels ("d<k>."
    // prefixed), then the interconnect.
    TraceChannel *d0gpu = sink.channel("d0.gpu");
    TraceChannel *d0scu = sink.channel("d0.scu");
    TraceChannel *d1gpu = sink.channel("d1.gpu");
    TraceChannel *d1mem = sink.channel("d1.memsys");
    TraceChannel *icn = sink.channel("icn");

    d0gpu->span(Category::Kernel, "bfs_iter", 0, 100);
    d0scu->span(Category::ScuOp, "filter", 10, 50);
    d1gpu->span(Category::Kernel, "bfs_iter", 0, 90);
    d1mem->counter(Category::Mem, "dram_bytes", 20, 512);
    icn->span(Category::Mem, "msg d0->d1", 100, 140, 8);

    std::ostringstream os;
    writeChromeTrace(os, sink);
    const std::string json = os.str();
    EXPECT_TRUE(jsonBalanced(json)) << json;

    // pid scheme: device k occupies pid block 10+4k, offset by the
    // single-device component pid (gpu=1, scu=2, mem=3); icn is 4.
    EXPECT_NE(json.find("\"pid\": 11, \"args\": {\"name\": "
                        "\"d0.gpu\"}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"pid\": 12, \"args\": {\"name\": "
                        "\"d0.scu\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 15, \"args\": {\"name\": "
                        "\"d1.gpu\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 17, \"args\": {\"name\": "
                        "\"d1.mem\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 4, \"args\": {\"name\": "
                        "\"icn\"}"),
              std::string::npos);
    // The link-message span lands on the icn pid.
    EXPECT_NE(json.find("\"name\": \"msg d0->d1\", \"cat\": \"mem\", "
                        "\"pid\": 4"),
              std::string::npos);
}

TEST(Timeseries, CumulativeModeSamplesEachWindowBoundary)
{
    stats::StatGroup g("ts_test");
    double v = 0;
    stats::Timeseries ts(&g, "counter", "test series", 10,
                         [&] { return v; });

    v = 5;
    ts.sampleUpTo(9); // before the first boundary: nothing yet
    EXPECT_TRUE(ts.samples().empty());
    EXPECT_EQ(ts.nextSampleTick(), 10u);

    ts.sampleUpTo(10);
    v = 7;
    ts.sampleUpTo(20);
    v = 9;
    ts.sampleUpTo(45); // fast-forward across two boundaries

    const auto &s = ts.samples();
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].tick, 10u);
    EXPECT_DOUBLE_EQ(s[0].value, 5);
    EXPECT_EQ(s[1].tick, 20u);
    EXPECT_DOUBLE_EQ(s[1].value, 7);
    EXPECT_EQ(s[2].tick, 30u);
    EXPECT_DOUBLE_EQ(s[2].value, 9);
    EXPECT_EQ(s[3].tick, 40u);
    EXPECT_DOUBLE_EQ(s[3].value, 9);
    EXPECT_EQ(ts.nextSampleTick(), 50u);
}

TEST(Timeseries, DeltaModeAttributesChangeToTheFirstCrossedWindow)
{
    stats::StatGroup g("ts_test");
    double v = 0;
    stats::Timeseries ts(&g, "bytes", "test series", 10,
                         [&] { return v; },
                         stats::Timeseries::Mode::Delta);

    v = 5;
    ts.sampleUpTo(10);
    v = 7;
    ts.sampleUpTo(20);
    v = 9;
    ts.sampleUpTo(45);

    const auto &s = ts.samples();
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s[0].value, 5); // 5 - 0
    EXPECT_DOUBLE_EQ(s[1].value, 2); // 7 - 5
    EXPECT_DOUBLE_EQ(s[2].value, 2); // 9 - 7, first crossed window
    EXPECT_DOUBLE_EQ(s[3].value, 0); // no change in the second
}

TEST(Timeseries, CsvWriterEmitsLongFormatRows)
{
    stats::StatGroup g("ts_test");
    double a = 1, b = 10;
    stats::Timeseries tsA(&g, "alpha", "a", 5, [&] { return a; });
    stats::Timeseries tsB(&g, "beta", "b", 5, [&] { return b; });
    tsA.sampleUpTo(10);
    tsB.sampleUpTo(5);

    std::ostringstream os;
    stats::writeTimeseriesCsv(os, {&tsA, &tsB, nullptr});
    EXPECT_EQ(os.str(),
              "series,tick,value\n"
              "alpha,5,1\n"
              "alpha,10,1\n"
              "beta,5,10\n");
}

/* ------------------------------------------------------------------ */
/* Determinism under tracing, and the exporter driven by a real run.  */
/* ------------------------------------------------------------------ */

std::string
statsDumpFor(harness::RunConfig cfg)
{
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    harness::RunResult r = harness::runPrimitive(cfg);
    EXPECT_TRUE(r.validated)
        << to_string(cfg.primitive) << " on " << cfg.systemName
        << " failed functional validation";
    EXPECT_FALSE(os.str().empty());
    return os.str();
}

harness::RunConfig
tinyBfs()
{
    harness::RunConfig cfg;
    cfg.systemName = "GTX980";
    cfg.primitive = harness::Primitive::Bfs;
    cfg.mode = harness::ScuMode::ScuEnhanced;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    return cfg;
}

TEST(TracedRuns, TracingNeverPerturbsTheStatsDump)
{
    const std::string baseline = statsDumpFor(tinyBfs());

    // Tracing fully enabled: events + timeseries, no artifact paths.
    harness::RunConfig traced = tinyBfs();
    traced.trace.enabled = true;
    traced.trace.mask = maskAll;
    traced.trace.timeseriesPeriod = 1024;
    EXPECT_EQ(baseline, statsDumpFor(traced))
        << "enabling tracing changed the dumped statistics";

    // Tracing enabled but every category masked off (the CI
    // configuration for the trace-enabled determinism job).
    harness::RunConfig masked = tinyBfs();
    masked.trace.enabled = true;
    masked.trace.mask = 0;
    EXPECT_EQ(baseline, statsDumpFor(masked))
        << "a masked-off trace sink changed the dumped statistics";
}

TEST(TracedRuns, ExporterWritesLoadableArtifactsForARealRun)
{
    const std::string dir = ::testing::TempDir();
    const std::string jsonPath = dir + "/scusim_trace_test.json";
    const std::string csvPath = dir + "/scusim_trace_test.csv";

    harness::RunConfig cfg = tinyBfs();
    cfg.trace.enabled = true;
    cfg.trace.mask = maskAll;
    cfg.trace.timeseriesPeriod = 256;
    cfg.trace.exportPath = jsonPath;
    cfg.trace.timeseriesPath = csvPath;

    harness::RunResult r = harness::runPrimitive(cfg);
    EXPECT_TRUE(r.validated);

    std::ifstream jf(jsonPath);
    ASSERT_TRUE(jf.good()) << "trace JSON was not written";
    std::stringstream jbuf;
    jbuf << jf.rdbuf();
    const std::string json = jbuf.str();
    EXPECT_TRUE(jsonBalanced(json));
    // The acceptance bar: at least three distinct named tracks.
    EXPECT_GE(countOccurrences(json, "\"thread_name\""), 3u);
    for (const char *track : {"\"sim\"", "\"sm0\"", "\"scu\""})
        EXPECT_NE(json.find(track), std::string::npos)
            << "missing track " << track;

    std::ifstream cf(csvPath);
    ASSERT_TRUE(cf.good()) << "timeseries CSV was not written";
    std::string header;
    ASSERT_TRUE(std::getline(cf, header));
    EXPECT_EQ(header, "series,tick,value");
    std::string row;
    ASSERT_TRUE(std::getline(cf, row)) << "timeseries CSV is empty";
    EXPECT_NE(row.find("filtered_nodes,"), std::string::npos);
}

TEST(TracedRuns, MultiDeviceRunExportsPerDeviceLanes)
{
    const std::string jsonPath =
        ::testing::TempDir() + "/scusim_trace_multidev.json";

    harness::RunConfig cfg = tinyBfs();
    cfg.deviceCount = 2;
    cfg.trace.enabled = true;
    cfg.trace.mask = maskAll;
    cfg.trace.exportPath = jsonPath;

    harness::RunResult r = harness::runPrimitive(cfg);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.icnMessages, 0u);

    std::ifstream jf(jsonPath);
    ASSERT_TRUE(jf.good()) << "trace JSON was not written";
    std::stringstream jbuf;
    jbuf << jf.rdbuf();
    const std::string json = jbuf.str();
    EXPECT_TRUE(jsonBalanced(json));

    // Channels are created at attach time regardless of build mode,
    // so each device's lanes and the interconnect track must exist —
    // on distinct pids per device.
    EXPECT_NE(json.find("\"d0.sm0\""), std::string::npos);
    EXPECT_NE(json.find("\"d1.sm0\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 11, \"args\": {\"name\": "
                        "\"d0.gpu\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 15, \"args\": {\"name\": "
                        "\"d1.gpu\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 4, \"args\": {\"name\": "
                        "\"icn\"}"),
              std::string::npos);
#if SCUSIM_TRACE_ENABLED
    // With emission compiled in, every boundary message leaves a
    // link span on the icn track.
    EXPECT_NE(json.find("\"name\": \"msg d0->d1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"msg d1->d0\""),
              std::string::npos);
#endif
}

} // namespace
