/**
 * @file
 * scug — the dataset-store container tool. Packs graphs into `.scug`
 * store files, inspects their headers and verifies their content
 * fingerprints, so a store directory can be audited without running
 * a single simulation.
 *
 *   scug pack <input> <out.scug> [--dedup]
 *       <input> is a graph file in any loadGraphFile format, or a
 *       synthetic dataset spec "name[:scale[:seed]]" (e.g.
 *       "kron:0.05:1") when no such file exists.
 *   scug info <file.scug>      (also: scug --info <file.scug>)
 *       decode and print the header: schema, counts, section
 *       geometry, content fingerprint.
 *   scug verify <file.scug>
 *       full open with streamed fingerprint verification; exit 0
 *       only when every byte checks out.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "graph/csr.hh"
#include "graph/datasets.hh"
#include "graph/loader.hh"
#include "store/format.hh"
#include "store/mapped_graph.hh"
#include "store/writer.hh"

using namespace scusim;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: scug pack <input> <out.scug> [--dedup]\n"
        "       scug info <file.scug>\n"
        "       scug verify <file.scug>\n"
        "  pack input: a graph file (edge list / DIMACS / Matrix\n"
        "  Market), or a dataset spec name[:scale[:seed]] when no\n"
        "  file of that name exists.\n");
    std::exit(2);
}

/** Parse "name[:scale[:seed]]" into its parts (defaults 1.0 / 1). */
bool
parseDatasetSpec(const std::string &spec, std::string &name,
                 double &scale, std::uint64_t &seed)
{
    name = spec;
    scale = 1.0;
    seed = 1;
    const std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        return !name.empty();
    name = spec.substr(0, c1);
    std::string rest = spec.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    std::string scaleStr =
        c2 == std::string::npos ? rest : rest.substr(0, c2);
    char *end = nullptr;
    scale = std::strtod(scaleStr.c_str(), &end);
    if (!end || *end != '\0' || !(scale > 0))
        return false;
    if (c2 != std::string::npos) {
        const std::string seedStr = rest.substr(c2 + 1);
        seed = std::strtoull(seedStr.c_str(), &end, 10);
        if (!end || *end != '\0' || seedStr.empty())
            return false;
    }
    return !name.empty();
}

int
cmdPack(const std::string &input, const std::string &out, bool dedup)
{
    graph::CsrGraph g;
    std::error_code ec;
    if (std::filesystem::exists(input, ec)) {
        g = graph::loadGraphFile(input, dedup);
    } else {
        std::string name;
        double scale;
        std::uint64_t seed;
        if (!parseDatasetSpec(input, name, scale, seed)) {
            std::fprintf(stderr,
                         "scug: '%s' is neither a file nor a "
                         "dataset spec\n",
                         input.c_str());
            return 1;
        }
        g = graph::makeDataset(name, scale, seed);
    }
    const store::PackResult pr = store::writeStore(g, out);
    if (!pr.ok) {
        std::fprintf(stderr, "scug: pack failed: %s\n",
                     pr.error.c_str());
        return 1;
    }
    std::printf("packed %s: %llu nodes %llu edges %llu bytes "
                "fingerprint %s\n",
                out.c_str(),
                static_cast<unsigned long long>(g.numNodes()),
                static_cast<unsigned long long>(g.numEdges()),
                static_cast<unsigned long long>(pr.fileBytes),
                store::fingerprintHex(pr.fingerprint).c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    store::ScugHeader h;
    std::string err;
    if (!store::readStoreHeader(path, h, &err)) {
        std::fprintf(stderr, "scug: %s\n", err.c_str());
        return 1;
    }
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    std::printf("file         %s\n", path.c_str());
    std::printf("schema       %u\n", h.schema);
    std::printf("nodes        %llu\n",
                static_cast<unsigned long long>(h.numNodes));
    std::printf("edges        %llu\n",
                static_cast<unsigned long long>(h.numEdges));
    std::printf("weights      %s\n",
                (h.flags & store::scugFlagWeights) ? "yes" : "no");
    std::printf("offsets      @%llu +%llu\n",
                static_cast<unsigned long long>(h.offsetsOff),
                static_cast<unsigned long long>(h.offsetsBytes));
    std::printf("dst          @%llu +%llu\n",
                static_cast<unsigned long long>(h.dstOff),
                static_cast<unsigned long long>(h.dstBytes));
    std::printf("weightsSec   @%llu +%llu\n",
                static_cast<unsigned long long>(h.weightOff),
                static_cast<unsigned long long>(h.weightBytes));
    std::printf("fileBytes    %llu\n",
                static_cast<unsigned long long>(ec ? 0 : bytes));
    std::printf("fingerprint  %s\n",
                store::fingerprintHex(h.fingerprint).c_str());
    std::printf("label        %s\n",
                store::fingerprintLabel(h.fingerprint).c_str());
    return 0;
}

int
cmdVerify(const std::string &path)
{
    store::OpenOptions oo;
    oo.verifyFingerprint = true;
    std::string err;
    auto mg = store::MappedGraph::open(path, oo, &err);
    if (!mg) {
        std::printf("%s BAD: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    std::printf("%s ok: %llu nodes %llu edges fingerprint %s (%s)\n",
                path.c_str(),
                static_cast<unsigned long long>(
                    mg->graph().numNodes()),
                static_cast<unsigned long long>(
                    mg->graph().numEdges()),
                store::fingerprintHex(mg->fingerprint()).c_str(),
                mg->mode() == store::MapMode::Mmap ? "mmap"
                                                   : "heap-copy");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "pack") {
        if (argc < 4 || argc > 5)
            usage();
        bool dedup = false;
        if (argc == 5) {
            if (std::strcmp(argv[4], "--dedup") != 0)
                usage();
            dedup = true;
        }
        return cmdPack(argv[2], argv[3], dedup);
    }
    if ((cmd == "info" || cmd == "--info") && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "verify" && argc == 3)
        return cmdVerify(argv[2]);
    usage();
}
