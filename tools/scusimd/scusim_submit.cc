/**
 * @file
 * scusim-submit — command-line client of the scusimd daemon. Submits
 * one run (or a health probe) with deadline propagation and the
 * deterministic retry/backoff policy of the service client, prints a
 * one-line outcome, and optionally writes the daemon's raw
 * encodeRunRecord bytes to a file.
 *
 * The --out artifact is the byte-identity hook the CI service job
 * diffs: a warm daemon-served record must equal the cold one bit for
 * bit, whichever process simulated it.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/sim_error.hh"
#include "harness/run_cache.hh"
#include "service/client.hh"

using namespace scusim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --health             probe daemon vitals and exit\n"
        "  --system NAME        GTX980 | TX1 (default GTX980)\n"
        "  --primitive P        BFS | SSSP | PR (default BFS)\n"
        "  --mode M             gpu-only | scu-basic | scu-enhanced\n"
        "  --dataset NAME       Table 5 dataset (default cond)\n"
        "  --dataset-file PATH  packed .scug store file on the\n"
        "                       daemon's filesystem (overrides\n"
        "                       --dataset; label becomes scug:<fp>)\n"
        "  --scale F            dataset scale factor (default 0.25)\n"
        "  --seed N             run seed (default 1)\n"
        "  --devices N          simulated device count (default 1)\n"
        "  --sharded            force the sharded driver\n"
        "  --deadline S         overall client deadline in seconds\n"
        "  --retries N          Overloaded/ConnectionLost retries\n"
        "  --out FILE           write the raw record bytes here\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    service::ClientOptions copts;
    harness::RunConfig cfg;
    bool healthProbe = false;
    std::string outPath;
    std::string storeFile;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--socket")
            copts.socketPath = need(i);
        else if (a == "--health")
            healthProbe = true;
        else if (a == "--system")
            cfg.systemName = need(i);
        else if (a == "--primitive") {
            if (!service::parsePrimitive(need(i), cfg.primitive))
                usage(argv[0]);
        } else if (a == "--mode") {
            if (!service::parseScuMode(need(i), cfg.mode))
                usage(argv[0]);
        } else if (a == "--dataset")
            cfg.dataset = need(i);
        else if (a == "--dataset-file")
            storeFile = need(i);
        else if (a == "--scale")
            cfg.scale = std::strtod(need(i), nullptr);
        else if (a == "--seed")
            cfg.seed = std::strtoull(need(i), nullptr, 10);
        else if (a == "--devices")
            cfg.deviceCount = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
        else if (a == "--sharded")
            cfg.sharded = true;
        else if (a == "--deadline")
            copts.deadlineSeconds = std::strtod(need(i), nullptr);
        else if (a == "--retries")
            copts.maxRetries = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
        else if (a == "--out")
            outPath = need(i);
        else
            usage(argv[0]);
    }
    if (copts.socketPath.empty())
        usage(argv[0]);
    cfg.alg.mode = cfg.mode;

    service::ServiceClient client(copts);

    if (healthProbe) {
        service::HealthInfo h;
        std::string err;
        if (!client.health(h, &err)) {
            std::fprintf(stderr, "health probe failed: %s\n",
                         err.c_str());
            return 1;
        }
        std::printf("ok %llu accepted %llu completed %llu failed "
                    "%llu shed %llu framesRejected %llu "
                    "disconnectCancels %llu journalRecovered %llu "
                    "quarantined %llu queueDepth %llu inFlight %llu "
                    "draining %llu\n",
                    static_cast<unsigned long long>(h.ok),
                    static_cast<unsigned long long>(h.requestsAccepted),
                    static_cast<unsigned long long>(h.requestsCompleted),
                    static_cast<unsigned long long>(h.requestsFailed),
                    static_cast<unsigned long long>(h.overloadShed),
                    static_cast<unsigned long long>(h.framesRejected),
                    static_cast<unsigned long long>(
                        h.disconnectCancels),
                    static_cast<unsigned long long>(
                        h.journalRecovered),
                    static_cast<unsigned long long>(
                        h.cacheQuarantined),
                    static_cast<unsigned long long>(h.queueDepth),
                    static_cast<unsigned long long>(h.inFlight),
                    static_cast<unsigned long long>(h.draining));
        return 0;
    }

    const harness::RunRecord rec = client.submit(cfg, storeFile);

    if (!outPath.empty() && rec.ok) {
        std::ofstream os(outPath,
                         std::ios::binary | std::ios::trunc);
        os << harness::encodeRunRecord(rec);
        if (!os.good()) {
            std::fprintf(stderr, "cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
    }

    if (rec.ok) {
        std::printf("%s ok cycles %llu attempts %u backoffMs %u\n",
                    rec.run.label.c_str(),
                    static_cast<unsigned long long>(
                        rec.result.totalCycles),
                    rec.attempts, rec.backoffMs);
        return 0;
    }
    std::printf("%s FAIL(%s) attempts %u: %s\n",
                rec.run.label.c_str(),
                rec.failure ? to_string(*rec.failure) : "unknown",
                rec.attempts, rec.error.c_str());
    return 1;
}
