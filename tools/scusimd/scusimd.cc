/**
 * @file
 * scusimd — the resident simulation service daemon. Binds a
 * Unix-domain socket, recovers any crash journal left by a previous
 * instance, and serves plan submissions from the shared run tiers
 * (memo, interned datasets, SCUSIM_CACHE_DIR) until SIGTERM/SIGINT
 * asks it to drain.
 *
 * Exit is graceful by construction: on the first signal the daemon
 * stops accepting, sheds its queue with typed Overloaded replies
 * (journal entries kept), waits up to --drain seconds for in-flight
 * runs, then persists stats/timeseries and exits 0. A kill -9 is
 * also safe — accepted requests live in the journal, and the next
 * instance re-executes them into the run cache.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "service/server.hh"

using scusim::service::Server;
using scusim::service::ServerOptions;

namespace
{

Server *gServer = nullptr;

extern "C" void
onSignal(int)
{
    if (gServer)
        gServer->requestShutdown(); // async-signal-safe (self-pipe)
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH        Unix-domain socket to listen on\n"
        "  --workers N          worker threads (default 2)\n"
        "  --queue-depth N      admission queue bound (default 64)\n"
        "  --max-pending-wall S shed when queued+running wall\n"
        "                       budgets exceed S seconds (0 = off)\n"
        "  --wall-budget S      per-run wall budget cap (default 300)\n"
        "  --retries N          transient-failure retries (default 1)\n"
        "  --journal DIR        crash journal directory\n"
        "  --drain S            shutdown drain budget (default 30)\n"
        "  --timeseries FILE    write stats timeseries CSV on exit\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--socket")
            opts.socketPath = need(i);
        else if (a == "--workers")
            opts.workers =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (a == "--queue-depth")
            opts.maxQueueDepth = std::strtoul(need(i), nullptr, 10);
        else if (a == "--max-pending-wall")
            opts.maxPendingWallSeconds = std::strtod(need(i), nullptr);
        else if (a == "--wall-budget")
            opts.defaultWallBudget = std::strtod(need(i), nullptr);
        else if (a == "--retries")
            opts.maxRetries =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (a == "--journal")
            opts.journalDir = need(i);
        else if (a == "--drain")
            opts.drainSeconds = std::strtod(need(i), nullptr);
        else if (a == "--timeseries")
            opts.timeseriesPath = need(i);
        else
            usage(argv[0]);
    }
    if (opts.socketPath.empty())
        usage(argv[0]);

    Server server(opts);
    gServer = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (!server.start())
        return 1;
    while (server.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();
    gServer = nullptr;
    return 0;
}
