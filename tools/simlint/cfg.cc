#include "cfg.hh"

#include <algorithm>

namespace simlint
{

// ---------------------------------------------------------------
// Structure layer
// ---------------------------------------------------------------

bool
isAnyOf(const Token &t, std::initializer_list<const char *> list)
{
    for (const char *s : list) {
        if (t.text == s)
            return true;
    }
    return false;
}

std::size_t
matchParenBack(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (toks[j].is(")"))
            ++depth;
        else if (toks[j].is("(") && --depth == 0)
            return j;
    }
    return static_cast<std::size_t>(-1);
}

std::size_t
matchParenFwd(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (toks[j].is("("))
            ++depth;
        else if (toks[j].is(")") && --depth == 0)
            return j;
    }
    return static_cast<std::size_t>(-1);
}

namespace
{

/** Classify the '{' at token @p i (see Span::Kind). */
Span
classifyBrace(const std::vector<Token> &toks, std::size_t i)
{
    Span s;
    s.open = i;

    // namespace Foo::Bar {  /  namespace {
    {
        std::size_t k = i;
        while (k > 0 && !toks[k - 1].is("namespace") &&
               (toks[k - 1].isIdent() || toks[k - 1].is("::")))
            --k;
        if (k > 0 && toks[k - 1].is("namespace")) {
            s.kind = Span::Kind::Namespace;
            return s;
        }
    }

    // Function body: '...)' [qualifiers / trailing return] '{'
    {
        std::size_t j = i;
        while (j > 0 &&
               (toks[j - 1].isIdent() ||
                toks[j - 1].kind == Token::Kind::Number ||
                isAnyOf(toks[j - 1],
                        {"::", "<", ">", "*", "&", "->", ","})) &&
               !isAnyOf(toks[j - 1],
                        {"class", "struct", "union", "enum",
                         "namespace", "else", "do", "try",
                         "return"}))
            --j;
        if (j > 0 && toks[j - 1].is(")")) {
            std::size_t open = matchParenBack(toks, j - 1);
            if (open != static_cast<std::size_t>(-1) && open > 0 &&
                isAnyOf(toks[open - 1],
                        {"if", "for", "while", "switch", "catch"})) {
                s.kind = Span::Kind::Other;
            } else {
                s.kind = Span::Kind::Function;
            }
            return s;
        }
    }

    // Class-like: window back to the previous ';' / '{' / '}'.
    {
        std::size_t w = i;
        while (w > 0 && !isAnyOf(toks[w - 1], {";", "{", "}"}))
            --w;
        for (std::size_t t = w; t < i; ++t) {
            if (isAnyOf(toks[t],
                        {"class", "struct", "union", "enum"})) {
                s.kind = Span::Kind::Class;
                if (t + 1 < i && toks[t + 1].isIdent())
                    s.name = toks[t + 1].text;
                for (std::size_t b = t + 1; b < i; ++b) {
                    if (toks[b].is(":")) {
                        s.hasBaseList = true;
                        break;
                    }
                }
                return s;
            }
        }
    }

    s.kind = Span::Kind::Other;
    return s;
}

} // namespace

int
Structure::enclosingFunction(std::size_t i) const
{
    int s = innermost[i];
    while (s >= 0 && spans[s].kind != Span::Kind::Function)
        s = spans[s].parent;
    return s;
}

int
Structure::enclosingClass(std::size_t i) const
{
    int s = innermost[i];
    while (s >= 0 && spans[s].kind != Span::Kind::Class)
        s = spans[s].parent;
    return s;
}

Structure
analyzeStructure(const std::vector<Token> &toks)
{
    Structure a;
    a.innermost.assign(toks.size(), -1);
    a.parenDepth.assign(toks.size(), 0);

    std::vector<int> stack;
    int paren = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("("))
            ++paren;
        a.parenDepth[i] = paren;
        if (t.is(")") && paren > 0)
            --paren;

        if (t.is("{")) {
            Span s = classifyBrace(toks, i);
            s.parent = stack.empty() ? -1 : stack.back();
            a.innermost[i] = s.parent;
            stack.push_back(static_cast<int>(a.spans.size()));
            a.spans.push_back(s);
            continue;
        }
        if (t.is("}")) {
            if (!stack.empty()) {
                a.spans[stack.back()].close = i;
                a.innermost[i] = stack.back();
                stack.pop_back();
            }
            continue;
        }
        a.innermost[i] = stack.empty() ? -1 : stack.back();
    }
    // Unclosed spans (truncated file): close at EOF.
    for (int idx : stack)
        a.spans[idx].close = toks.empty() ? 0 : toks.size() - 1;
    return a;
}

// ---------------------------------------------------------------
// Symbol layer
// ---------------------------------------------------------------

const std::string SymbolTable::empty;

void
SymbolTable::collect(const std::vector<Token> &toks,
                     std::initializer_list<const char *> types,
                     bool companion)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent() || !isAnyOf(toks[i], types))
            continue;
        const std::string &type = toks[i].text;
        std::size_t j = i + 1;
        // Optional template argument list.
        if (j < toks.size() && toks[j].is("<")) {
            int depth = 0;
            for (; j < toks.size(); ++j) {
                if (toks[j].is("<"))
                    ++depth;
                else if (toks[j].is(">") && --depth == 0)
                    break;
            }
            if (j >= toks.size())
                continue;
            ++j;
        }
        while (j < toks.size() &&
               isAnyOf(toks[j], {"&", "*", "const"}))
            ++j;
        if (j >= toks.size() || !toks[j].isIdent())
            continue;
        // `Type name` where name is itself a keyword-ish token or
        // another type mention is not a declarator we care about.
        if (isAnyOf(toks[j], {"operator", "return"}))
            continue;
        SymbolInfo info;
        info.type = type;
        if (!companion)
            info.declTok = j;
        // First declaration wins; in-file beats companion.
        auto it = syms.find(toks[j].text);
        if (it == syms.end())
            syms.emplace(toks[j].text, info);
        else if (it->second.declTok == static_cast<std::size_t>(-1) &&
                 !companion)
            it->second = info;
    }
}

const std::string &
SymbolTable::typeOf(const std::string &name) const
{
    auto it = syms.find(name);
    return it == syms.end() ? empty : it->second.type;
}

std::size_t
SymbolTable::declTokOf(const std::string &name) const
{
    auto it = syms.find(name);
    return it == syms.end() ? static_cast<std::size_t>(-1)
                            : it->second.declTok;
}

// ---------------------------------------------------------------
// CFG layer
// ---------------------------------------------------------------

namespace
{

/**
 * Recursive-descent statement parser producing basic blocks. One
 * instance builds one function's CFG from its body token range.
 */
class CfgBuilder
{
  public:
    CfgBuilder(const std::vector<Token> &tokens, Cfg &out)
        : toks(tokens), cfg(out)
    {
    }

    void
    build()
    {
        cfg.entry = newBlock();
        cfg.exit = newBlock();
        cur = cfg.entry;
        cfg.blockOfTok.assign(
            cfg.bodyClose - cfg.bodyOpen + 1, -1);
        parseCompound(cfg.bodyOpen);
        edge(cur, cfg.exit);
        computeDominators();
    }

  private:
    const std::vector<Token> &toks;
    Cfg &cfg;
    int cur = 0;
    std::vector<int> breakTargets;
    std::vector<int> continueTargets;

    int
    newBlock()
    {
        cfg.blocks.emplace_back();
        return static_cast<int>(cfg.blocks.size() - 1);
    }

    void
    edge(int a, int b)
    {
        auto &s = cfg.blocks[a].succs;
        if (std::find(s.begin(), s.end(), b) != s.end())
            return;
        s.push_back(b);
        cfg.blocks[b].preds.push_back(a);
    }

    void
    emit(std::size_t i)
    {
        cfg.blocks[cur].tokens.push_back(i);
        if (i >= cfg.bodyOpen && i <= cfg.bodyClose)
            cfg.blockOfTok[i - cfg.bodyOpen] = cur;
    }

    /** Emit tokens of a balanced `( ... )` group starting at @p i
     *  (which may not be '(' — then nothing is consumed). Returns
     *  the index just past the ')'. */
    std::size_t
    emitParen(std::size_t i)
    {
        if (i >= toks.size() || !toks[i].is("("))
            return i;
        std::size_t close = matchParenFwd(toks, i);
        if (close == static_cast<std::size_t>(-1))
            close = toks.size() - 1;
        for (std::size_t k = i; k <= close; ++k)
            emit(k);
        return close + 1;
    }

    /** Emit a balanced `{ ... }` group linearly into the current
     *  block (lambda body / brace-init inside an expression). */
    std::size_t
    emitBraceGroup(std::size_t i)
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            emit(i);
            if (toks[i].is("{"))
                ++depth;
            else if (toks[i].is("}") && --depth == 0)
                return i + 1;
        }
        return i;
    }

    /**
     * Default statement: emit tokens until a ';' at relative paren /
     * bracket depth 0. Brace groups met on the way (lambdas,
     * brace-init) are swallowed linearly. Stops before a '}' that
     * would close the enclosing compound.
     */
    std::size_t
    parseExprStatement(std::size_t i)
    {
        int paren = 0;
        while (i < toks.size()) {
            const Token &t = toks[i];
            if (t.is("(") || t.is("["))
                ++paren;
            else if (t.is(")") || t.is("]"))
                --paren;
            else if (t.is("{") && paren <= 0) {
                i = emitBraceGroup(i);
                // `struct X {...};` / lambda-expr stmt: a following
                // ';' belongs to this statement.
                if (i < toks.size() && toks[i].is(";")) {
                    emit(i);
                    ++i;
                }
                return i;
            } else if (t.is("{")) {
                i = emitBraceGroup(i);
                continue;
            } else if (t.is("}") && paren <= 0) {
                return i; // enclosing compound closes
            } else if (t.is(";") && paren <= 0) {
                emit(i);
                return i + 1;
            }
            emit(i);
            ++i;
        }
        return i;
    }

    /** Parse the compound statement whose '{' is at @p i. */
    std::size_t
    parseCompound(std::size_t i)
    {
        emit(i); // '{'
        ++i;
        while (i < toks.size() && !toks[i].is("}"))
            i = parseStatement(i);
        if (i < toks.size()) {
            emit(i); // '}'
            ++i;
        }
        return i;
    }

    std::size_t
    parseStatement(std::size_t i)
    {
        const Token &t = toks[i];

        if (t.is("{"))
            return parseCompound(i);
        if (t.is("if"))
            return parseIf(i);
        if (t.is("while"))
            return parseWhile(i);
        if (t.is("do"))
            return parseDo(i);
        if (t.is("for"))
            return parseFor(i);
        if (t.is("switch"))
            return parseSwitch(i);
        if (t.is("try"))
            return parseTry(i);
        if (t.is("return")) {
            i = parseExprStatement(i);
            edge(cur, cfg.exit);
            cur = newBlock();
            return i;
        }
        if (t.is("break") && !breakTargets.empty()) {
            emit(i);
            ++i;
            if (i < toks.size() && toks[i].is(";")) {
                emit(i);
                ++i;
            }
            edge(cur, breakTargets.back());
            cur = newBlock();
            return i;
        }
        if (t.is("continue") && !continueTargets.empty()) {
            emit(i);
            ++i;
            if (i < toks.size() && toks[i].is(";")) {
                emit(i);
                ++i;
            }
            edge(cur, continueTargets.back());
            cur = newBlock();
            return i;
        }
        if (t.is(";")) {
            emit(i);
            return i + 1;
        }
        return parseExprStatement(i);
    }

    /** Skip/emit tokens between a control keyword and its '('
     *  (e.g. `if constexpr`). */
    std::size_t
    emitToParen(std::size_t i)
    {
        while (i < toks.size() && !toks[i].is("(") &&
               !toks[i].is("{") && !toks[i].is(";")) {
            emit(i);
            ++i;
        }
        return i;
    }

    std::size_t
    parseIf(std::size_t i)
    {
        emit(i); // 'if'
        i = emitToParen(i + 1);
        i = emitParen(i);
        const int condEnd = cur;

        const int thenB = newBlock();
        edge(condEnd, thenB);
        cur = thenB;
        i = parseStatement(i);
        const int thenEnd = cur;

        if (i < toks.size() && toks[i].is("else")) {
            emit(i);
            ++i;
            const int elseB = newBlock();
            edge(condEnd, elseB);
            cur = elseB;
            i = parseStatement(i);
            const int elseEnd = cur;
            const int join = newBlock();
            edge(thenEnd, join);
            edge(elseEnd, join);
            cur = join;
        } else {
            const int join = newBlock();
            edge(thenEnd, join);
            edge(condEnd, join);
            cur = join;
        }
        return i;
    }

    std::size_t
    parseWhile(std::size_t i)
    {
        const int header = newBlock();
        edge(cur, header);
        cur = header;
        emit(i); // 'while'
        i = emitToParen(i + 1);
        i = emitParen(i);

        const int body = newBlock();
        const int exitB = newBlock();
        edge(header, body);
        edge(header, exitB);

        breakTargets.push_back(exitB);
        continueTargets.push_back(header);
        cur = body;
        i = parseStatement(i);
        edge(cur, header);
        breakTargets.pop_back();
        continueTargets.pop_back();

        cur = exitB;
        return i;
    }

    std::size_t
    parseDo(std::size_t i)
    {
        emit(i); // 'do'
        ++i;
        const int body = newBlock();
        const int cond = newBlock();
        const int exitB = newBlock();
        edge(cur, body);

        breakTargets.push_back(exitB);
        continueTargets.push_back(cond);
        cur = body;
        i = parseStatement(i);
        edge(cur, cond);
        breakTargets.pop_back();
        continueTargets.pop_back();

        cur = cond;
        // `while ( ... ) ;`
        if (i < toks.size() && toks[i].is("while")) {
            emit(i);
            i = emitToParen(i + 1);
            i = emitParen(i);
            if (i < toks.size() && toks[i].is(";")) {
                emit(i);
                ++i;
            }
        }
        edge(cond, body);
        edge(cond, exitB);
        cur = exitB;
        return i;
    }

    std::size_t
    parseFor(std::size_t i)
    {
        emit(i); // 'for'
        i = emitToParen(i + 1);
        if (i >= toks.size() || !toks[i].is("(")) {
            // Malformed; degrade to an expression statement.
            return parseExprStatement(i);
        }
        const std::size_t open = i;
        std::size_t close = matchParenFwd(toks, open);
        if (close == static_cast<std::size_t>(-1))
            close = toks.size() - 1;

        // Split the parenthesis content on top-level ';'.
        std::vector<std::size_t> semis;
        int depth = 0;
        for (std::size_t k = open; k <= close; ++k) {
            if (toks[k].is("(") || toks[k].is("[") || toks[k].is("{"))
                ++depth;
            else if (toks[k].is(")") || toks[k].is("]") ||
                     toks[k].is("}"))
                --depth;
            else if (toks[k].is(";") && depth == 1)
                semis.push_back(k);
        }

        if (semis.size() < 2) {
            // Range-for (or macro): the whole head is the loop
            // condition.
            const int header = newBlock();
            edge(cur, header);
            cur = header;
            for (std::size_t k = open; k <= close; ++k)
                emit(k);
            const int body = newBlock();
            const int exitB = newBlock();
            edge(header, body);
            edge(header, exitB);
            breakTargets.push_back(exitB);
            continueTargets.push_back(header);
            cur = body;
            i = parseStatement(close + 1);
            edge(cur, header);
            breakTargets.pop_back();
            continueTargets.pop_back();
            cur = exitB;
            return i;
        }

        // Classic for: init into the current block, condition into
        // the header, increment into a latch block.
        emit(open);
        for (std::size_t k = open + 1; k <= semis[0]; ++k)
            emit(k);

        const int header = newBlock();
        edge(cur, header);
        cur = header;
        for (std::size_t k = semis[0] + 1; k <= semis[1]; ++k)
            emit(k);

        const int body = newBlock();
        const int latch = newBlock();
        const int exitB = newBlock();
        edge(header, body);
        edge(header, exitB);

        cur = latch;
        for (std::size_t k = semis[1] + 1; k <= close; ++k)
            emit(k);
        edge(latch, header);

        breakTargets.push_back(exitB);
        continueTargets.push_back(latch);
        cur = body;
        i = parseStatement(close + 1);
        edge(cur, latch);
        breakTargets.pop_back();
        continueTargets.pop_back();

        cur = exitB;
        return i;
    }

    std::size_t
    parseSwitch(std::size_t i)
    {
        emit(i); // 'switch'
        i = emitToParen(i + 1);
        i = emitParen(i);
        const int head = cur;
        const int exitB = newBlock();
        // A switch with no default may skip the whole body.
        edge(head, exitB);

        if (i >= toks.size() || !toks[i].is("{")) {
            cur = exitB;
            return i;
        }

        breakTargets.push_back(exitB);
        emit(i); // '{'
        ++i;
        // Dead until the first case label.
        cur = newBlock();
        while (i < toks.size() && !toks[i].is("}")) {
            if (toks[i].is("case") || toks[i].is("default")) {
                const int caseB = newBlock();
                edge(cur, caseB); // fallthrough
                edge(head, caseB);
                cur = caseB;
                while (i < toks.size() && !toks[i].is(":")) {
                    emit(i);
                    ++i;
                }
                if (i < toks.size()) {
                    emit(i); // ':'
                    ++i;
                }
                continue;
            }
            i = parseStatement(i);
        }
        if (i < toks.size()) {
            emit(i); // '}'
            ++i;
        }
        edge(cur, exitB);
        breakTargets.pop_back();
        cur = exitB;
        return i;
    }

    std::size_t
    parseTry(std::size_t i)
    {
        emit(i); // 'try'
        ++i;
        const int preTry = cur;
        const int tryB = newBlock();
        edge(preTry, tryB);
        cur = tryB;
        if (i < toks.size() && toks[i].is("{"))
            i = parseCompound(i);
        const int tryEnd = cur;

        const int join = newBlock();
        edge(tryEnd, join);
        while (i < toks.size() && toks[i].is("catch")) {
            emit(i);
            i = emitToParen(i + 1);
            const int catchB = newBlock();
            // An exception may fly out of any point of the try
            // body; only facts established *before* the try are
            // guaranteed in the handler.
            edge(preTry, catchB);
            cur = catchB;
            i = emitParen(i);
            if (i < toks.size() && toks[i].is("{"))
                i = parseCompound(i);
            edge(cur, join);
        }
        cur = join;
        return i;
    }

    // -----------------------------------------------------------
    // Dominators / post-dominators (iterative, Cooper-Harvey-
    // Kennedy over reverse postorder).
    // -----------------------------------------------------------

    void
    computeDominators()
    {
        cfg.idom = computeIdom(/*backward=*/false);
        cfg.ipdom = computeIdom(/*backward=*/true);
    }

    std::vector<int>
    computeIdom(bool backward)
    {
        const int n = static_cast<int>(cfg.blocks.size());
        const int root = backward ? cfg.exit : cfg.entry;

        // Postorder DFS from the root over succs (or preds).
        std::vector<int> order; // postorder
        std::vector<int> number(n, -1);
        std::vector<int> state(n, 0);
        std::vector<std::pair<int, std::size_t>> stack;
        stack.push_back({root, 0});
        state[root] = 1;
        while (!stack.empty()) {
            auto &[b, k] = stack.back();
            const auto &next = backward ? cfg.blocks[b].preds
                                        : cfg.blocks[b].succs;
            if (k < next.size()) {
                int s = next[k++];
                if (state[s] == 0) {
                    state[s] = 1;
                    stack.push_back({s, 0});
                }
            } else {
                number[b] = static_cast<int>(order.size());
                order.push_back(b);
                stack.pop_back();
            }
        }

        std::vector<int> idom(n, -1);
        idom[root] = root;
        bool changed = true;
        while (changed) {
            changed = false;
            // Reverse postorder.
            for (std::size_t oi = order.size(); oi-- > 0;) {
                const int b = order[oi];
                if (b == root)
                    continue;
                const auto &preds = backward ? cfg.blocks[b].succs
                                             : cfg.blocks[b].preds;
                int newIdom = -1;
                for (int p : preds) {
                    if (number[p] < 0 || idom[p] < 0)
                        continue; // unreachable or unprocessed
                    if (newIdom < 0) {
                        newIdom = p;
                        continue;
                    }
                    // intersect(p, newIdom)
                    int f1 = p, f2 = newIdom;
                    while (f1 != f2) {
                        while (number[f1] < number[f2])
                            f1 = idom[f1];
                        while (number[f2] < number[f1])
                            f2 = idom[f2];
                    }
                    newIdom = f1;
                }
                if (newIdom >= 0 && idom[b] != newIdom) {
                    idom[b] = newIdom;
                    changed = true;
                }
            }
        }
        return idom;
    }
};

/** Extract scope / name / signature range for the function whose
 *  body '{' is at span.open. */
void
nameFunction(const std::vector<Token> &toks, const Structure &st,
             const Span &span, Cfg &cfg)
{
    // Walk back over trailing qualifiers to the ')'.
    std::size_t j = span.open;
    while (j > 0 &&
           (toks[j - 1].isIdent() ||
            toks[j - 1].kind == Token::Kind::Number ||
            isAnyOf(toks[j - 1],
                    {"::", "<", ">", "*", "&", "->", ","})))
        --j;
    if (j == 0 || !toks[j - 1].is(")"))
        return;
    std::size_t close = j - 1;
    std::size_t open = matchParenBack(toks, close);
    if (open == static_cast<std::size_t>(-1) || open == 0)
        return;
    cfg.sigOpen = open;
    cfg.sigClose = close;
    // `[Scope ::]* name (`
    if (!toks[open - 1].isIdent())
        return;
    cfg.fnName = toks[open - 1].text;
    if (open >= 3 && toks[open - 2].is("::") &&
        toks[open - 3].isIdent()) {
        cfg.scopeName = toks[open - 3].text;
    } else {
        // Inline method: the enclosing class span names the scope.
        int cls = st.enclosingClass(span.open);
        if (cls >= 0)
            cfg.scopeName = st.spans[cls].name;
    }
}

} // namespace

bool
Cfg::dominates(int a, int b) const
{
    if (a == b)
        return true;
    int x = b;
    // idom chains are acyclic except the entry's self-loop.
    while (x >= 0 && idom[x] != x) {
        x = idom[x];
        if (x == a)
            return true;
    }
    return x == a;
}

bool
Cfg::postDominates(int a, int b) const
{
    if (a == b)
        return true;
    int x = b;
    while (x >= 0 && ipdom[x] != x) {
        x = ipdom[x];
        if (x == a)
            return true;
    }
    return x == a;
}

int
Cfg::blockAt(std::size_t tok) const
{
    if (tok < bodyOpen || tok > bodyClose)
        return -1;
    return blockOfTok[tok - bodyOpen];
}

bool
Cfg::isLoopHeader(int b) const
{
    for (int p : blocks[b].preds) {
        if (dominates(b, p))
            return true;
    }
    return false;
}

std::vector<Cfg>
buildCfgs(const LexedFile &file, const Structure &st)
{
    std::vector<Cfg> out;
    const auto &toks = file.tokens;
    for (std::size_t si = 0; si < st.spans.size(); ++si) {
        const Span &span = st.spans[si];
        if (span.kind != Span::Kind::Function)
            continue;
        // Outermost function spans only: lambdas / local functions
        // fold into the enclosing function's CFG.
        if (st.enclosingFunction(span.open) >= 0)
            continue;
        if (span.close <= span.open)
            continue;
        Cfg cfg;
        cfg.bodyOpen = span.open;
        cfg.bodyClose = span.close;
        nameFunction(toks, st, span, cfg);
        CfgBuilder builder(toks, cfg);
        builder.build();
        out.push_back(std::move(cfg));
    }
    return out;
}

} // namespace simlint
