/**
 * @file
 * Structural and control-flow analysis for simlint v2.
 *
 * Three layers, all over the lexer's token stream (no libclang, no
 * external deps):
 *
 *  1. Structure: brace spans classified as namespace / class /
 *     function / other, with per-token innermost-span and paren-depth
 *     maps. This is the same skeleton the v1 heuristics used; it now
 *     lives here so the CFG builder and the rules share it.
 *  2. Symbols: a lightweight symbol table mapping variable names to
 *     declared type heads ("BoundedFifo", "DeviceId", ...), optionally
 *     seeded from a companion header so member fifos declared in
 *     `foo.hh` are visible while linting `foo.cc`.
 *  3. CFG: per-function control-flow graphs built by a recursive
 *     statement parser — basic blocks of token indices, branch /
 *     loop / switch / try edges, dominators and post-dominators.
 *
 * The CFG is deliberately approximate where C++ is hard: lambda and
 * brace-init bodies inside an expression are swallowed linearly into
 * the current block (conservative for must-analyses), `goto` is
 * treated as a plain statement, and exceptions only flow through the
 * explicit try/catch edges. That is precise enough for the
 * flow-sensitive rules while keeping the parser small and total: it
 * never fails, it only degrades to coarser blocks.
 */

#ifndef SIMLINT_CFG_HH
#define SIMLINT_CFG_HH

#include <cstddef>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace simlint
{

// ---------------------------------------------------------------
// Structure layer
// ---------------------------------------------------------------

/** One brace-delimited region of the file. */
struct Span
{
    enum class Kind { Namespace, Class, Function, Other };
    Kind kind = Kind::Other;
    std::size_t open = 0;  ///< token index of '{'
    std::size_t close = 0; ///< token index of matching '}'
    int parent = -1;
    bool hasBaseList = false; ///< Class: derives from something
    std::string name;         ///< Class: the class name, if found
};

/** Brace spans + per-token maps shared by the rules and the CFG. */
struct Structure
{
    std::vector<Span> spans;
    /** Innermost enclosing span per token (-1 = file scope). */
    std::vector<int> innermost;
    /** Parenthesis nesting depth per token. */
    std::vector<int> parenDepth;

    /** Innermost *function* span containing token @p i, or -1. */
    int enclosingFunction(std::size_t i) const;
    /** Innermost *class* span containing token @p i, or -1. */
    int enclosingClass(std::size_t i) const;
};

Structure analyzeStructure(const std::vector<Token> &toks);

/** True when @p t equals any string in @p list. */
bool isAnyOf(const Token &t, std::initializer_list<const char *> list);

/** Index of the '(' matching the ')' at @p i, or npos. */
std::size_t matchParenBack(const std::vector<Token> &toks,
                           std::size_t i);

/** Index of the ')' matching the '(' at @p i, or npos. */
std::size_t matchParenFwd(const std::vector<Token> &toks,
                          std::size_t i);

// ---------------------------------------------------------------
// Symbol layer
// ---------------------------------------------------------------

/**
 * Where a variable of interest was declared and what its declared
 * type head is ("BoundedFifo", "DeviceId", ...).
 */
struct SymbolInfo
{
    std::string type;
    /** Token index of the declarator in its file, npos if from the
     *  companion header (out-of-file). */
    std::size_t declTok = static_cast<std::size_t>(-1);
};

/**
 * Lightweight symbol table: names of variables / members / parameters
 * declared with one of the requested type heads. Declarations match
 * `Type [<...>] [&*const]* name`, which covers locals, members and
 * parameters alike.
 */
class SymbolTable
{
  public:
    /** Collect declarations of @p types from @p toks. Tokens from a
     *  companion file record no declTok (they are out-of-file). */
    void collect(const std::vector<Token> &toks,
                 std::initializer_list<const char *> types,
                 bool companion = false);

    bool has(const std::string &name) const
    {
        return syms.count(name) != 0;
    }
    /** Declared type head of @p name, or "" if unknown. */
    const std::string &typeOf(const std::string &name) const;
    /** Declarator token index of @p name (npos if companion). */
    std::size_t declTokOf(const std::string &name) const;

  private:
    std::map<std::string, SymbolInfo> syms;
    static const std::string empty;
};

// ---------------------------------------------------------------
// CFG layer
// ---------------------------------------------------------------

/** One basic block: a run of tokens with single-entry control flow
 *  (approximately — see file header). */
struct BasicBlock
{
    std::vector<std::size_t> tokens; ///< ascending token indices
    std::vector<int> succs, preds;
};

/** Per-function control-flow graph. */
struct Cfg
{
    /** Unqualified function name ("send"), empty if not derivable. */
    std::string fnName;
    /** Qualifying scope ("Interconnect" for Interconnect::send), or
     *  the enclosing class name for inline methods; empty for free
     *  functions. */
    std::string scopeName;

    std::size_t sigOpen = 0;  ///< '(' of the parameter list (or 0)
    std::size_t sigClose = 0; ///< matching ')'
    std::size_t bodyOpen = 0; ///< '{' of the body
    std::size_t bodyClose = 0;

    int entry = 0;
    int exit = 0;
    std::vector<BasicBlock> blocks;

    /** Immediate dominator per block; entry maps to itself,
     *  unreachable blocks map to -1. */
    std::vector<int> idom;
    /** Immediate post-dominator per block; exit maps to itself. */
    std::vector<int> ipdom;

    /** True if block @p a dominates block @p b. */
    bool dominates(int a, int b) const;
    /** True if block @p a post-dominates block @p b. */
    bool postDominates(int a, int b) const;
    /** Block containing token @p tok, or -1 when outside the body. */
    int blockAt(std::size_t tok) const;
    /** True if @p b is a natural-loop header (has a back edge). */
    bool isLoopHeader(int b) const;

    // Internal: token -> block map over [bodyOpen, bodyClose].
    std::vector<int> blockOfTok;
};

/**
 * Build one CFG per outermost function span of @p file. Lambdas and
 * local structs nested inside a function body are folded into the
 * enclosing function's CFG (their tokens join the block active at
 * their position).
 */
std::vector<Cfg> buildCfgs(const LexedFile &file,
                           const Structure &structure);

} // namespace simlint

#endif // SIMLINT_CFG_HH
