#include "dataflow.hh"

#include <algorithm>

namespace simlint
{

FactSet::FactSet(int numFacts, bool full)
    : w((numFacts + 63) / 64, full ? ~std::uint64_t{0} : 0)
{
    if (full && numFacts % 64)
        w.back() = (std::uint64_t{1} << (numFacts % 64)) - 1;
}

void
FactSet::set(int f)
{
    w[f / 64] |= std::uint64_t{1} << (f % 64);
}

bool
FactSet::test(int f) const
{
    if (w.empty())
        return false;
    return (w[f / 64] >> (f % 64)) & 1;
}

bool
FactSet::intersectWith(const FactSet &o)
{
    bool changed = false;
    for (std::size_t i = 0; i < w.size(); ++i) {
        std::uint64_t v = w[i] & o.w[i];
        if (v != w[i]) {
            w[i] = v;
            changed = true;
        }
    }
    return changed;
}

void
FactSet::uniteWith(const FactSet &o)
{
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] |= o.w[i];
}

MustAnalysis::MustAnalysis(const Cfg &c, int n)
    : cfg(c), numFacts(n), genOf(c.blocks.size()),
      blockGen(c.blocks.size(), FactSet(n))
{
}

void
MustAnalysis::genAt(std::size_t tok, int f)
{
    int b = cfg.blockAt(tok);
    if (b < 0)
        return;
    genOf[b].push_back({tok, f});
    blockGen[b].set(f);
}

void
ForwardMust::solve()
{
    const std::size_t n = cfg.blocks.size();
    for (auto &g : genOf)
        std::sort(g.begin(), g.end());

    // Optimistic init: TOP (all facts) everywhere except the entry.
    in.assign(n, FactSet(numFacts, true));
    in[cfg.entry] = FactSet(numFacts);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            if (static_cast<int>(b) == cfg.entry)
                continue;
            FactSet v(numFacts, true);
            bool any = false;
            for (int p : cfg.blocks[b].preds) {
                FactSet o = in[p];
                o.uniteWith(blockGen[p]);
                v.intersectWith(o);
                any = true;
            }
            if (!any)
                continue; // unreachable: stays TOP
            if (!(v == in[b])) {
                in[b] = v;
                changed = true;
            }
        }
    }
}

bool
ForwardMust::holdsBefore(std::size_t tok, int f) const
{
    int b = cfg.blockAt(tok);
    if (b < 0)
        return false;
    if (in[b].test(f))
        return true;
    for (const auto &[t, g] : genOf[b]) {
        if (t >= tok)
            break;
        if (g == f)
            return true;
    }
    return false;
}

void
BackwardMust::solve()
{
    const std::size_t n = cfg.blocks.size();
    for (auto &g : genOf)
        std::sort(g.begin(), g.end());

    out.assign(n, FactSet(numFacts, true));
    out[cfg.exit] = FactSet(numFacts);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            if (static_cast<int>(b) == cfg.exit)
                continue;
            FactSet v(numFacts, true);
            bool any = false;
            for (int s : cfg.blocks[b].succs) {
                FactSet o = out[s];
                o.uniteWith(blockGen[s]);
                v.intersectWith(o);
                any = true;
            }
            if (!any)
                continue;
            if (!(v == out[b])) {
                out[b] = v;
                changed = true;
            }
        }
    }
}

bool
BackwardMust::holdsAfter(std::size_t tok, int f) const
{
    int b = cfg.blockAt(tok);
    if (b < 0)
        return false;
    // A gen later in the same block satisfies every path.
    for (const auto &[t, g] : genOf[b]) {
        if (t > tok && g == f)
            return true;
    }
    return out[b].test(f);
}

} // namespace simlint
