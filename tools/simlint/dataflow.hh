/**
 * @file
 * Intraprocedural dataflow framework for simlint v2.
 *
 * Two solvers over a Cfg, both with set-intersection meet (must
 * analyses) and a small monotone domain: facts are rule-defined
 * small integers (e.g. one fact per fifo variable meaning "a
 * full()/space() back-pressure consult happened"), generated at
 * specific tokens and never killed — within one function our
 * abstract values only strengthen (guarded stays guarded, armed
 * stays armed).
 *
 *  - ForwardMust: fact f holds *before* token t iff every path from
 *    the function entry to t passes a gen point of f. This is
 *    "a gen point dominates t", generalized to multiple gen sites.
 *  - BackwardMust: fact f holds *after* token t iff every path from
 *    t to the function exit passes a gen point of f — i.e. the gen
 *    points collectively post-dominate t ("a credit return / wake
 *    arm is unavoidable from here").
 */

#ifndef SIMLINT_DATAFLOW_HH
#define SIMLINT_DATAFLOW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cfg.hh"

namespace simlint
{

/** A dynamically sized bitset of facts. */
class FactSet
{
  public:
    FactSet() = default;
    explicit FactSet(int numFacts, bool full = false);

    void set(int f);
    bool test(int f) const;
    /** this &= o; returns true if anything changed. */
    bool intersectWith(const FactSet &o);
    /** this |= o. */
    void uniteWith(const FactSet &o);
    bool operator==(const FactSet &o) const { return w == o.w; }

  private:
    std::vector<std::uint64_t> w;
};

/** Shared machinery of the two solvers. */
class MustAnalysis
{
  public:
    MustAnalysis(const Cfg &cfg, int numFacts);

    /** Register that fact @p f becomes true at token @p tok. */
    void genAt(std::size_t tok, int f);

  protected:
    const Cfg &cfg;
    int numFacts;
    /** (token, fact) gen points, per block, token-sorted. */
    std::vector<std::vector<std::pair<std::size_t, int>>> genOf;
    std::vector<FactSet> blockGen; ///< all facts gen'd in a block
};

/** See file header. Call solve() after the last genAt(). */
class ForwardMust : public MustAnalysis
{
  public:
    using MustAnalysis::MustAnalysis;

    void solve();
    /** Does @p f hold on every path *before* token @p tok? */
    bool holdsBefore(std::size_t tok, int f) const;

  private:
    std::vector<FactSet> in;
};

/** See file header. Call solve() after the last genAt(). */
class BackwardMust : public MustAnalysis
{
  public:
    using MustAnalysis::MustAnalysis;

    void solve();
    /** Is @p f generated on every path *after* token @p tok? */
    bool holdsAfter(std::size_t tok, int f) const;

  private:
    std::vector<FactSet> out;
};

} // namespace simlint

#endif // SIMLINT_DATAFLOW_HH
