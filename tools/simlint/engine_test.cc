/**
 * @file
 * Unit tests for the simlint v2 analysis engine: CFG construction,
 * dominators / post-dominators, the must-dataflow solvers, the
 * symbol table (including companion-header seeding), and end-to-end
 * rule behavior on small snippets.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfg.hh"
#include "dataflow.hh"
#include "lexer.hh"
#include "rules.hh"

using namespace simlint;

namespace
{

struct Built
{
    LexedFile file;
    Structure st;
    std::vector<Cfg> cfgs;
};

Built
build(const std::string &src)
{
    Built b;
    b.file = lex("test.cc", src);
    b.st = analyzeStructure(b.file.tokens);
    b.cfgs = buildCfgs(b.file, b.st);
    return b;
}

/** Index of the @p nth token with text @p text (1-based). */
std::size_t
tok(const std::vector<Token> &toks, const std::string &text,
    int nth = 1)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text == text && --nth == 0)
            return i;
    }
    ADD_FAILURE() << "token not found: " << text;
    return 0;
}

TEST(CfgTest, StraightLineIsOneBlock)
{
    Built b = build("void f() { alpha(); beta(); }");
    ASSERT_EQ(b.cfgs.size(), 1u);
    const Cfg &c = b.cfgs[0];
    EXPECT_EQ(c.fnName, "f");
    EXPECT_TRUE(c.scopeName.empty());
    EXPECT_EQ(c.blockAt(tok(b.file.tokens, "alpha")),
              c.blockAt(tok(b.file.tokens, "beta")));
}

TEST(CfgTest, IfSplitsFlowAndJoins)
{
    Built b = build("void f(int c) {"
                    "  if (c) { alpha(); }"
                    "  beta();"
                    "}");
    ASSERT_EQ(b.cfgs.size(), 1u);
    const Cfg &c = b.cfgs[0];
    int condB = c.blockAt(tok(b.file.tokens, "c", 2));
    int thenB = c.blockAt(tok(b.file.tokens, "alpha"));
    int joinB = c.blockAt(tok(b.file.tokens, "beta"));
    ASSERT_GE(condB, 0);
    ASSERT_GE(thenB, 0);
    ASSERT_GE(joinB, 0);
    EXPECT_NE(thenB, joinB);
    // The condition dominates both arms; the then-arm dominates
    // neither the join nor the exit.
    EXPECT_TRUE(c.dominates(condB, thenB));
    EXPECT_TRUE(c.dominates(condB, joinB));
    EXPECT_FALSE(c.dominates(thenB, joinB));
    // The join has two predecessors: fallthrough and the then-arm.
    EXPECT_EQ(c.blocks[joinB].preds.size(), 2u);
    // And it post-dominates the branch.
    EXPECT_TRUE(c.postDominates(joinB, condB));
    EXPECT_TRUE(c.postDominates(joinB, thenB));
}

TEST(CfgTest, EarlyReturnReachesExitDirectly)
{
    Built b = build("void f(int c) {"
                    "  if (c) return;"
                    "  alpha();"
                    "}");
    const Cfg &c = b.cfgs.at(0);
    int tailB = c.blockAt(tok(b.file.tokens, "alpha"));
    ASSERT_GE(tailB, 0);
    // The tail does NOT post-dominate the branch: the return path
    // bypasses it.
    int condB = c.blockAt(tok(b.file.tokens, "c", 2));
    EXPECT_FALSE(c.postDominates(tailB, condB));
    EXPECT_GE(c.blocks[c.exit].preds.size(), 2u);
}

TEST(CfgTest, WhileMakesALoopHeader)
{
    Built b = build("void f(int cond) {"
                    "  while (cond) { body(); }"
                    "  after();"
                    "}");
    const Cfg &c = b.cfgs.at(0);
    int headB = c.blockAt(tok(b.file.tokens, "cond", 2));
    int bodyB = c.blockAt(tok(b.file.tokens, "body"));
    int afterB = c.blockAt(tok(b.file.tokens, "after"));
    ASSERT_GE(headB, 0);
    EXPECT_TRUE(c.isLoopHeader(headB));
    EXPECT_FALSE(c.isLoopHeader(bodyB));
    EXPECT_FALSE(c.isLoopHeader(afterB));
    // The header dominates the body and the loop exit.
    EXPECT_TRUE(c.dominates(headB, bodyB));
    EXPECT_TRUE(c.dominates(headB, afterB));
}

TEST(CfgTest, ForLoopHeaderAndExit)
{
    Built b = build("void f(int n) {"
                    "  for (int i = 0; i < n; ++i) { body(); }"
                    "  after();"
                    "}");
    const Cfg &c = b.cfgs.at(0);
    int headB = c.blockAt(tok(b.file.tokens, "<"));
    int bodyB = c.blockAt(tok(b.file.tokens, "body"));
    ASSERT_GE(headB, 0);
    EXPECT_TRUE(c.isLoopHeader(headB));
    EXPECT_TRUE(c.dominates(headB, bodyB));
}

TEST(CfgTest, OutOfLineMemberNames)
{
    Built b = build("void Worker::tick() { alpha(); }");
    ASSERT_EQ(b.cfgs.size(), 1u);
    EXPECT_EQ(b.cfgs[0].fnName, "tick");
    EXPECT_EQ(b.cfgs[0].scopeName, "Worker");
}

TEST(CfgTest, InlineMethodGetsClassScope)
{
    Built b = build("struct Worker {"
                    "  void tick() { alpha(); }"
                    "};");
    ASSERT_EQ(b.cfgs.size(), 1u);
    EXPECT_EQ(b.cfgs[0].fnName, "tick");
    EXPECT_EQ(b.cfgs[0].scopeName, "Worker");
}

TEST(CfgTest, LambdaFoldsIntoEnclosingFlow)
{
    Built b = build("void f(int c) {"
                    "  if (c) return;"
                    "  auto g = [&] { inner(); };"
                    "  g();"
                    "}");
    // One CFG (the lambda does not become its own function), and the
    // lambda body joins the block after the branch.
    ASSERT_EQ(b.cfgs.size(), 1u);
    const Cfg &c = b.cfgs[0];
    int innerB = c.blockAt(tok(b.file.tokens, "inner"));
    int condB = c.blockAt(tok(b.file.tokens, "c", 2));
    ASSERT_GE(innerB, 0);
    EXPECT_TRUE(c.dominates(condB, innerB));
}

TEST(DataflowTest, ForwardMustNeedsAllPaths)
{
    Built b = build("void f(int c) {"
                    "  if (c) { gen1(); } else { gen2(); }"
                    "  use();"
                    "}");
    const Cfg &c = b.cfgs.at(0);
    std::size_t useTok = tok(b.file.tokens, "use");

    // Gen on both arms: holds at the join.
    {
        ForwardMust fm(c, 1);
        fm.genAt(tok(b.file.tokens, "gen1"), 0);
        fm.genAt(tok(b.file.tokens, "gen2"), 0);
        fm.solve();
        EXPECT_TRUE(fm.holdsBefore(useTok, 0));
    }
    // Gen on one arm only: must-intersection kills it.
    {
        ForwardMust fm(c, 1);
        fm.genAt(tok(b.file.tokens, "gen1"), 0);
        fm.solve();
        EXPECT_FALSE(fm.holdsBefore(useTok, 0));
    }
}

TEST(DataflowTest, ForwardMustRespectsOrderWithinBlock)
{
    Built b = build("void f() { early(); gen(); late(); }");
    const Cfg &c = b.cfgs.at(0);
    ForwardMust fm(c, 1);
    fm.genAt(tok(b.file.tokens, "gen"), 0);
    fm.solve();
    EXPECT_FALSE(fm.holdsBefore(tok(b.file.tokens, "early"), 0));
    EXPECT_TRUE(fm.holdsBefore(tok(b.file.tokens, "late"), 0));
}

TEST(DataflowTest, BackwardMustIsPostDominance)
{
    Built b = build("void f(int c) {"
                    "  use();"
                    "  if (c) { gen1(); } else { gen2(); }"
                    "}");
    const Cfg &c = b.cfgs.at(0);
    std::size_t useTok = tok(b.file.tokens, "use");
    {
        BackwardMust bm(c, 1);
        bm.genAt(tok(b.file.tokens, "gen1"), 0);
        bm.genAt(tok(b.file.tokens, "gen2"), 0);
        bm.solve();
        EXPECT_TRUE(bm.holdsAfter(useTok, 0));
    }
    {
        BackwardMust bm(c, 1);
        bm.genAt(tok(b.file.tokens, "gen1"), 0);
        bm.solve();
        EXPECT_FALSE(bm.holdsAfter(useTok, 0));
    }
}

TEST(SymbolTest, CollectsParamsLocalsAndMembers)
{
    LexedFile f = lex(
        "t.cc",
        "struct S { BoundedFifo<int> inbox{4}; };"
        "void g(BoundedFifo<int> &param) {"
        "  BoundedFifo<int> local(2);"
        "}");
    SymbolTable syms;
    syms.collect(f.tokens, {"BoundedFifo"});
    EXPECT_TRUE(syms.has("inbox"));
    EXPECT_TRUE(syms.has("param"));
    EXPECT_TRUE(syms.has("local"));
    EXPECT_FALSE(syms.has("g"));
    EXPECT_EQ(syms.typeOf("inbox"), "BoundedFifo");
    EXPECT_NE(syms.declTokOf("local"),
              static_cast<std::size_t>(-1));
}

TEST(SymbolTest, CompanionDeclarationsHaveNoLocalDeclTok)
{
    LexedFile hdr =
        lex("t.hh", "struct S { BoundedFifo<int> q; };");
    SymbolTable syms;
    syms.collect(hdr.tokens, {"BoundedFifo"}, /*companion=*/true);
    EXPECT_TRUE(syms.has("q"));
    EXPECT_EQ(syms.declTokOf("q"), static_cast<std::size_t>(-1));
}

TEST(RulesTest, UnguardedPushFires)
{
    LexedFile f = lex("t.cc",
                      "void p(BoundedFifo<int> &q) { q.push(1); }");
    RuleResults rr = runRules(f);
    ASSERT_EQ(rr.findings.size(), 1u);
    EXPECT_EQ(rr.findings[0].rule, "fifo-unguarded-push");
}

TEST(RulesTest, DominatingGuardSuppresses)
{
    LexedFile f = lex("t.cc",
                      "void p(BoundedFifo<int> &q) {"
                      "  if (q.full()) return;"
                      "  q.push(1);"
                      "}");
    EXPECT_TRUE(runRules(f).findings.empty());
}

TEST(RulesTest, BranchLocalGuardDoesNotSuppress)
{
    LexedFile f = lex("t.cc",
                      "void p(BoundedFifo<int> &q, bool v) {"
                      "  if (v) { bool b = q.full(); (void)b; }"
                      "  q.push(1);"
                      "}");
    ASSERT_EQ(runRules(f).findings.size(), 1u);
}

TEST(RulesTest, CompanionHeaderMakesMemberFifoVisible)
{
    LexedFile hdr =
        lex("t.hh", "struct S { BoundedFifo<int> q; void f(); };");
    LexedFile impl = lex("t.cc", "void S::f() { q.push(1); }");
    // Without the header the symbol is unknown: nothing fires.
    EXPECT_TRUE(runRules(impl).findings.empty());
    // With it, the unguarded member push is caught.
    RuleResults rr = runRules(impl, false, &hdr);
    ASSERT_EQ(rr.findings.size(), 1u);
    EXPECT_EQ(rr.findings[0].rule, "fifo-unguarded-push");
}

TEST(RulesTest, WakeNotArmedNeedsPostDominatingWake)
{
    const char *src =
        "struct W { BoundedFifo<int> q; };"
        "void W::tick() { }"
        "void W::add(int v) {"
        "  if (q.full()) return;"
        "  q.push(v);"
        "}";
    RuleResults rr = runRules(lex("t.cc", src));
    ASSERT_EQ(rr.findings.size(), 1u);
    EXPECT_EQ(rr.findings[0].rule, "wake-not-armed");

    const char *armed =
        "struct W { BoundedFifo<int> q; };"
        "void W::tick() { }"
        "void W::add(int v) {"
        "  if (q.full()) return;"
        "  q.push(v);"
        "  notifyWake();"
        "}";
    EXPECT_TRUE(runRules(lex("t.cc", armed)).findings.empty());
}

TEST(RulesTest, DeviceZeroFoldedThroughLocalConstFires)
{
    RuleResults rr = runRules(
        lex("t.cc",
            "int *p(System &sys, DeviceId dev) {"
            "  const DeviceId primary = 0;"
            "  return sys.memory(primary);"
            "}"));
    ASSERT_EQ(rr.findings.size(), 1u);
    EXPECT_EQ(rr.findings[0].rule, "device-zero-hardcode");

    // constexpr and brace-init fold the same way.
    rr = runRules(lex("t.cc",
                      "int *p(System &sys, DeviceId dev) {"
                      "  constexpr DeviceId kHost{0};"
                      "  return sys.gpuDevice(kHost);"
                      "}"));
    ASSERT_EQ(rr.findings.size(), 1u);
    EXPECT_EQ(rr.findings[0].rule, "device-zero-hardcode");

    // A non-zero constant is not a hardcoded zero...
    EXPECT_TRUE(runRules(lex("t.cc",
                             "int *p(System &sys, DeviceId dev) {"
                             "  const DeviceId next = 1;"
                             "  return sys.memory(next);"
                             "}"))
                    .findings.empty());
    // ...a mutable local may be reassigned, so it never folds...
    EXPECT_TRUE(runRules(lex("t.cc",
                             "int *p(System &sys, DeviceId dev) {"
                             "  DeviceId d = 0;"
                             "  d = dev;"
                             "  return sys.memory(d);"
                             "}"))
                    .findings.empty());
    // ...and a dominating device comparison still exempts.
    EXPECT_TRUE(runRules(lex("t.cc",
                             "int *p(System &sys, DeviceId dev) {"
                             "  const DeviceId primary = 0;"
                             "  if (dev == 0)"
                             "    return sys.gpuDevice(primary);"
                             "  return sys.memory(dev);"
                             "}"))
                    .findings.empty());
}

TEST(RulesTest, UnusedAllowIsTracked)
{
    LexedFile f = lex("t.cc",
                      "void p(BoundedFifo<int> &q) {\n"
                      "  if (q.full()) return;\n"
                      "  // simlint: allow(fifo-unguarded-push)\n"
                      "  q.push(1);\n"
                      "}\n");
    RuleResults rr = runRules(f);
    EXPECT_TRUE(rr.findings.empty());
    ASSERT_EQ(rr.unusedAllows.size(), 1u);
    EXPECT_EQ(rr.unusedAllows[0].rule, "fifo-unguarded-push");
}

} // namespace
