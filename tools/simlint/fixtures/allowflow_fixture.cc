// simlint fixture: allow() interaction with multi-line flow-sensitive
// findings, and stale-suppression (unused-suppression) detection.
//
// Flow findings anchor at the *push* line even when the reasoning
// spans the whole function, so an allow() must sit on the push line
// or the line directly above it — an allow() parked elsewhere in the
// function does not apply, and any allow() that suppresses nothing
// is itself reported. Not compiled — lexed by the self-test.

#include "common/fifo.hh"

struct Item
{
    int v;
};

void
suppressedFlowFinding(scusim::BoundedFifo<Item> &q, Item it)
{
    // upstream reserve() guarantees space on this path
    // simlint: allow(fifo-unguarded-push)
    q.push(it);
}

void
allowOnThePushLine(scusim::BoundedFifo<Item> &q, Item it)
{
    q.push(it); // simlint: allow(fifo-unguarded-push)
}

void
staleAfterFix(scusim::BoundedFifo<Item> &q, Item it)
{
    if (q.full())
        return;
    // The guard above already satisfies the rule, so this allow()
    // suppresses nothing and is flagged as stale.
    // simlint: allow(fifo-unguarded-push), expect(unused-suppression)
    q.push(it);
}

void
allowTooFarAway(scusim::BoundedFifo<Item> &q, Item it)
{
    // An allow() several lines above the anchor does not apply:
    // simlint: allow(fifo-unguarded-push), expect(unused-suppression)
    int filler = it.v;
    (void)filler;
    q.push(it); // simlint: expect(fifo-unguarded-push)
}
