// simlint fixture: swallowed-sim-error.

#include <exception>
#include <string>

namespace scusim
{
enum class FailureKind { Panic };
struct SimError : std::exception
{
    FailureKind kind() const { return FailureKind::Panic; }
};
} // namespace scusim

int
swallowsEverything()
{
    try {
        return 1;
    } catch (...) { // simlint: expect(swallowed-sim-error)
        return 0;
    }
}

int
swallowsAfterLogging(std::string &log)
{
    try {
        return 1;
    } catch (...) { // simlint: expect(swallowed-sim-error)
        log = "something went wrong";
        return 0;
    }
}

int
rethrows()
{
    try {
        return 1;
    } catch (...) { // ok: the failure survives
        throw;
    }
}

int
classifiesFirst(scusim::FailureKind &out)
{
    try {
        return 1;
    } catch (const scusim::SimError &e) {
        out = e.kind();
        return -1;
    } catch (...) { // ok: SimError was caught and recorded above
        out = scusim::FailureKind::Panic;
        return 0;
    }
}

int
typedHandlerIsFine()
{
    try {
        return 1;
    } catch (const std::exception &) { // ok: not a catch-all
        return 0;
    }
}
