// simlint fixture: device-zero-hardcode.
//
// Code that receives a DeviceId but indexes a per-device resource
// with literal 0 silently reads device 0's state for every shard.
// An explicit dominating comparison of the DeviceId against a
// literal marks deliberate device-0 special-casing and suppresses
// the finding. Not compiled — lexed by the self-test.

struct System
{
    int *gpuDevice(int d);
    int *memory(int d);
    int *link(int src, int dst);
};

using DeviceId = int;

int *
resolveWrong(System &sys, DeviceId dev)
{
    return sys.gpuDevice(0); // simlint: expect(device-zero-hardcode)
}

int *
resolveRight(System &sys, DeviceId dev)
{
    return sys.gpuDevice(dev);
}

int *
multiArgWrong(System &sys, DeviceId dev)
{
    return sys.link(dev, 0); // simlint: expect(device-zero-hardcode)
}

int *
specialCaseHost(System &sys, DeviceId dev)
{
    // Deliberate special-casing: the comparison dominates the access.
    if (dev == 0)
        return sys.gpuDevice(0);
    return sys.memory(dev);
}

int *
specialCaseNotEqual(System &sys, DeviceId dev)
{
    if (dev != 0)
        return sys.memory(dev);
    return sys.gpuDevice(0);
}

int *
noDeviceParamIsFine(System &sys)
{
    // Without a DeviceId in scope there is nothing to forward.
    return sys.gpuDevice(0);
}

int *
nonLiteralArgIsFine(System &sys, DeviceId dev, int base)
{
    return sys.memory(base + 0 * dev);
}

int *
constFoldedWrong(System &sys, DeviceId dev)
{
    // Naming the zero does not un-hardcode it: the compiler folds
    // the constant straight back into memory(0).
    const DeviceId primary = 0;
    return sys.memory(primary); // simlint: expect(device-zero-hardcode)
}

int *
constexprFoldedWrong(System &sys, DeviceId dev)
{
    constexpr DeviceId kHost{0};
    return sys.gpuDevice(kHost); // simlint: expect(device-zero-hardcode)
}

int *
nonZeroConstIsFine(System &sys, DeviceId dev)
{
    const DeviceId next = 1;
    return sys.memory(next);
}

int *
guardedConstFoldIsFine(System &sys, DeviceId dev)
{
    // The dominating comparison marks deliberate special-casing,
    // folded constant or not.
    const DeviceId primary = 0;
    if (dev == 0)
        return sys.gpuDevice(primary);
    return sys.memory(dev);
}

int *
mutableLocalIsFine(System &sys, DeviceId dev)
{
    // Only const/constexpr locals fold; a mutable variable may have
    // been reassigned on the way to the access.
    DeviceId d = 0;
    d = dev;
    return sys.memory(d);
}
