// simlint fixture: fifo-unguarded-push.
// Not compiled — lexed by the self-test; every expect() below must
// fire exactly once, nothing else may.

#include "common/fifo.hh"

#include <queue>

struct Packet
{
    int x;
};

void
unguardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    q.push(p); // simlint: expect(fifo-unguarded-push)
}

void
guardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    if (!q.full())
        q.push(p);
}

void
spaceGuardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    if (q.space() >= 1)
        q.push(p);
}

void
stdQueueIsFine(std::queue<Packet> &unbounded, Packet p)
{
    unbounded.push(p);
}

void
suppressedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    // drain loop upstream guarantees space here
    // simlint: allow(fifo-unguarded-push)
    q.push(p);
}
