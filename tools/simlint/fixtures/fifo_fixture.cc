// simlint fixture: fifo-unguarded-push (flow-sensitive v2:
// a full()/space() consult must hold on *every* path from the
// function entry to the push — guard-dominates-push).
// Not compiled — lexed by the self-test; every expect() below must
// fire exactly once, nothing else may.

#include "common/fifo.hh"

#include <queue>

struct Packet
{
    int x;
};

void
unguardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    q.push(p); // simlint: expect(fifo-unguarded-push)
}

void
guardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    if (!q.full())
        q.push(p);
}

void
spaceGuardedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    if (q.space() >= 1)
        q.push(p);
}

void
guardAfterPushIsNoGuard(scusim::BoundedFifo<Packet> &q, Packet p)
{
    // The consult exists but happens too late: the push is reached
    // first. v1 ("full() somewhere in the function") missed this.
    q.push(p); // simlint: expect(fifo-unguarded-push)
    if (q.full())
        return;
}

void
branchOnlyGuardIsNoGuard(scusim::BoundedFifo<Packet> &q, Packet p,
                         bool noisy)
{
    // The consult only happens on the noisy path; the quiet path
    // reaches the push unguarded. v1 missed this too.
    if (noisy) {
        bool wasFull = q.full();
        (void)wasFull;
    }
    q.push(p); // simlint: expect(fifo-unguarded-push)
}

void
bothBranchesGuard(scusim::BoundedFifo<Packet> &q, Packet p, bool a)
{
    // Multiple gen sites: every path consults, so the push is fine
    // even though no single consult dominates it.
    if (a) {
        if (q.full())
            return;
    } else {
        while (q.full())
            q.pop();
    }
    q.push(p);
}

void
drainThenPush(scusim::BoundedFifo<Packet> &q, Packet p)
{
    // Loop-header consult dominates the loop exit.
    while (q.full())
        q.pop();
    q.push(p);
}

void
lambdaSeesOuterGuard(scusim::BoundedFifo<Packet> &q, Packet p)
{
    // The push sits inside a lambda but the dominating consult is in
    // the enclosing function: the CFG folds the lambda body into the
    // enclosing flow, so this is clean. v1 anchored the search to the
    // innermost brace span and false-positived here.
    if (q.full())
        return;
    auto doPush = [&] { q.push(p); };
    doPush();
}

void
stdQueueIsFine(std::queue<Packet> &unbounded, Packet p)
{
    unbounded.push(p);
}

void
suppressedProducer(scusim::BoundedFifo<Packet> &q, Packet p)
{
    // drain loop upstream guarantees space here
    // simlint: allow(fifo-unguarded-push)
    q.push(p);
}
