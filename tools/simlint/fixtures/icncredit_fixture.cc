// simlint fixture: icn-credit-leak.
//
// In a function that both inspects (front()/top()) and pops a queue,
// every inspect must be followed by a pop on all paths to the exit —
// otherwise the element stays queued and its flow-control credit is
// never returned. Loop-header inspections (the scan idiom) are
// exempt; inspect-only functions (peek accessors) are out of scope.
// Not compiled — lexed by the self-test.

#include <queue>

struct Msg
{
    int dst;
};

struct Rx
{
    std::queue<Msg> q;
    bool accept(const Msg &m);
    void deliverLeak();
    void deliverClean();
    void scanIdiom(int now);
    int drainThenPeek(int now);
    bool peekOnly(Msg &out);
};

void
Rx::deliverLeak()
{
    if (q.empty())
        return;
    Msg m = q.front(); // simlint: expect(icn-credit-leak)
    if (!accept(m))
        return; // early exit leaves m queued: credit never returned
    q.pop();
}

void
Rx::deliverClean()
{
    if (q.empty())
        return;
    Msg m = q.front();
    bool ok = accept(m);
    (void)ok;
    q.pop();
}

void
Rx::scanIdiom(int now)
{
    // front() in a loop header is the drain-scan idiom: the one
    // inspect that doesn't pop is the loop-exit test itself.
    while (!q.empty() && q.front().dst <= now) {
        q.pop();
    }
}

int
Rx::drainThenPeek(int now)
{
    // Pops happen strictly *before* the inspect: from the final
    // peek no pop is reachable, so nothing "started consuming" —
    // this is the scheduler's drain-then-read-earliest idiom.
    while (!q.empty() && q.front().dst < now)
        q.pop();
    if (q.empty())
        return -1;
    return q.front().dst;
}

bool
Rx::peekOnly(Msg &out)
{
    // No pop anywhere in this function: a pure peek accessor, the
    // caller owns the credit discipline.
    if (q.empty())
        return false;
    out = q.front();
    return true;
}
