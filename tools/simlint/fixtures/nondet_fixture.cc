// simlint fixture: nondeterminism.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long
wallSeed()
{
    std::random_device rd; // simlint: expect(nondeterminism)
    return rd();
}

int
libcRand()
{
    return rand(); // simlint: expect(nondeterminism)
}

long
epochNow()
{
    return time(nullptr); // simlint: expect(nondeterminism)
}

double
hostClock()
{
    auto t = std::chrono::steady_clock::now(); // simlint: expect(nondeterminism)
    return t.time_since_epoch().count();
}

struct Fake
{
    int rand() const { return 4; }
    long time(long t) const { return t; }
};

int
memberCallsAreFine(const Fake &f)
{
    return f.rand() + static_cast<int>(f.time(7));
}

int
suppressedEntropy()
{
    // simlint: allow(nondeterminism)
    return rand();
}
