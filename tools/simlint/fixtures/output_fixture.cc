// simlint fixture: direct-output (src/-scoped; the self-test forces
// src scoping on).

#include <cstdio>
#include <iostream>

void
reportProgress(int pct)
{
    std::printf("progress: %d%%\n", pct); // simlint: expect(direct-output)
}

void
reportState(int state)
{
    std::cout << "state " << state << "\n"; // simlint: expect(direct-output)
}

void
reportError(const char *msg)
{
    std::fprintf(stderr, "error: %s\n", msg); // simlint: expect(direct-output)
}

void
bufferFormattingIsFine(char *buf, unsigned long cap, int v)
{
    std::snprintf(buf, cap, "%d", v);
}

void
ostreamParameterIsFine(std::ostream &os, int v)
{
    os << "value " << v << "\n";
}

void
suppressedSink(const char *msg)
{
    // this *is* the logging backend in the real tree
    // simlint: allow(direct-output)
    std::fprintf(stderr, "%s\n", msg);
}
