// simlint fixture: missing-override.

using Tick = unsigned long long;

class Clocked
{
  public:
    virtual ~Clocked() = default;
    virtual void tick(Tick now) = 0;
    virtual bool busy(Tick now) const = 0;
    virtual Tick nextWakeTick(Tick now) const { return now; }
};

class GoodEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick(Tick now) const final;
};

class BadEngine : public Clocked
{
  public:
    void tick(Tick now); // simlint: expect(missing-override)
    bool busy(Tick now) const; // simlint: expect(missing-override)
};

class NotDerivedIsFine
{
  public:
    void tick(Tick now);
    void reset();
};

class SuppressedEngine : public Clocked
{
  public:
    // shadows Clocked::tick on purpose (non-virtual fast path)
    // simlint: allow(missing-override)
    void tick(Tick now);
    bool busy(Tick now) const override;
};
