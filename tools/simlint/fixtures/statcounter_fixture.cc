// simlint fixture: raw-stat-counter (src/-scoped; the self-test
// forces src scoping on).

#include <cstdint>

namespace scusim::fixture
{

uint64_t totalPackets = 0; // simlint: expect(raw-stat-counter)
double lastBandwidth = 0.0; // simlint: expect(raw-stat-counter)

constexpr int kWarpSize = 32;
const double kClockGhz = 1.2;
static const char *kName = "fixture";

struct PacketStats
{
    uint64_t packets = 0;
};

inline int
localCounterIsFine()
{
    int count = 0;
    ++count;
    return count;
}

// scratch toggle for interactive debugging only
// simlint: allow(raw-stat-counter)
unsigned debugTickTrace = 0;

} // namespace scusim::fixture
