// simlint fixture: stat-registered-after-start (src/-scoped; the
// self-test forces src scoping on).

#include <memory>
#include <string>

namespace scusim::stats
{
struct StatGroup
{
    explicit StatGroup(std::string) {}
};
struct Scalar
{
    Scalar(StatGroup *, std::string, std::string) {}
    Scalar &operator+=(double) { return *this; }
};
struct Timeseries
{
    Timeseries(StatGroup *, std::string, std::string) {}
};
} // namespace scusim::stats

namespace scusim::fixture
{

struct Component
{
    // Member declarations: the right place for stats. No parens
    // follow the name, so these never match the local shape.
    stats::StatGroup grp;
    stats::Scalar requests;

    Component()
        : grp("component"),
          // Mem-init-list construction is the blessed pattern; the
          // member name carries no stat type token, so no match.
          requests(&grp, "requests", "requests issued")
    {
    }

    void
    work()
    {
        requests += 1;
    }
};

inline double
midRunCounter(stats::StatGroup *parent)
{
    // A function-local stat registers mid-run and unregisters on
    // return — exactly the bug the rule exists for.
    stats::Scalar lost(parent, "lost", // simlint: expect(stat-registered-after-start)
                       "never survives to the dump");
    stats::Timeseries bad(parent, "bad", // simlint: expect(stat-registered-after-start)
                          "window samples dropped at scope exit");
    return 0;
}

inline void
heapAllocatedIsFine(stats::StatGroup *parent)
{
    // Heap-owned series handed to a longer-lived owner (the harness
    // pattern): the type appears as a template argument, not as a
    // local declaration, so the rule stays quiet.
    auto ts = std::make_unique<stats::Timeseries>(
        parent, "ok", "owned beyond this scope");
    (void)ts;
}

// A deliberate, annotated exception is suppressible as usual.
inline void
annotatedException(stats::StatGroup *parent)
{
    // simlint: allow(stat-registered-after-start)
    stats::Scalar scratch(parent, "scratch", "debug only");
    (void)scratch;
}

} // namespace scusim::fixture
