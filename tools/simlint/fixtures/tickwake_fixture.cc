// simlint fixture: tick-every-cycle.

using Tick = unsigned long long;
constexpr Tick tickNever = ~0ull;

class Clocked
{
  public:
    virtual ~Clocked() = default;
    virtual void tick(Tick now) = 0;
    virtual bool busy(Tick now) const = 0;
    virtual Tick nextWakeTick() const = 0;
};

class PollingEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick() const override { return last_ + 1; } // simlint: expect(tick-every-cycle)

  private:
    Tick last_ = 0;
};

class CachedEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    // Cached earliest wake — no additive "next tick" answer.
    Tick nextWakeTick() const override { return wakeCache_; }

  private:
    Tick wakeCache_ = tickNever;
};

class IdleAwareEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    // Branching on idleness is the contract done right.
    Tick nextWakeTick() const override
    {
        return pending_ ? wakeAt_ : tickNever;
    }

  private:
    bool pending_ = false;
    Tick wakeAt_ = 0;
};

class OutOfLineEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick() const override;

  private:
    Tick now_ = 0;
};

Tick
OutOfLineEngine::nextWakeTick() const // simlint: expect(tick-every-cycle)
{
    return now_ + 1;
}

class SpinEngine : public Clocked
{
  public:
    void tick(Tick now) override;
    bool busy(Tick now) const override;
    // Deliberate busy-spin component (a watchdog test double).
    // simlint: allow(tick-every-cycle)
    Tick nextWakeTick() const override { return now_ + 1; }

  private:
    Tick now_ = 0;
};

class NotAComponent
{
  public:
    // No base list, not the Clocked contract: out of scope.
    Tick nextWakeTick() const { return last_ + 1; }

  private:
    Tick last_ = 0;
};

Tick
probe(const Clocked &c)
{
    // A *call* is never a finding.
    return c.nextWakeTick() + 1;
}
