// simlint fixture: unordered-iteration.

#include <map>
#include <unordered_map>

double
sumValues(const std::unordered_map<int, double> &vals)
{
    double sum = 0.0;
    for (const auto &kv : vals) // simlint: expect(unordered-iteration)
        sum += kv.second;
    return sum;
}

int
firstKey(const std::unordered_map<int, double> &vals)
{
    auto it = vals.begin(); // simlint: expect(unordered-iteration)
    return it == vals.end() ? -1 : it->first;
}

double
orderedIterationIsFine(const std::map<int, double> &ordered)
{
    double sum = 0.0;
    for (const auto &kv : ordered)
        sum += kv.second;
    return sum;
}

double
lookupIsFine(const std::unordered_map<int, double> &vals)
{
    auto it = vals.find(3);
    return it == vals.end() ? 0.0 : it->second;
}

double
suppressedIteration(const std::unordered_map<int, double> &vals)
{
    double sum = 0.0;
    // order-independent reduction: sum is commutative
    // simlint: allow(unordered-iteration)
    for (const auto &kv : vals)
        sum += kv.second;
    return sum;
}
