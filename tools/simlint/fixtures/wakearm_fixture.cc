// simlint fixture: wake-not-armed.
//
// A Clocked component (detected here by this file defining
// Worker::tick) that enqueues pending work outside tick() must call
// notifyWake() on every path after the push, or the event-driven
// scheduler may never service the work.
// Not compiled — lexed by the self-test.

#include "common/fifo.hh"

struct Job
{
    int id;
};

struct Worker
{
    void tick();
    void enqueue(Job j);
    void enqueueArmed(Job j);
    void enqueueBranchyArm(Job j, bool urgent);
    void enqueueEitherPathArms(Job j, bool urgent);
    void localScratch(Job j);
    void notifyWake();
    scusim::BoundedFifo<Job> inbox{8};
};

void
Worker::tick()
{
    // tick() itself is exempt: the scheduler re-derives the next
    // wake from nextWakeTick() after every delivery.
    if (!inbox.full())
        inbox.push(Job{0});
}

void
Worker::enqueue(Job j)
{
    if (inbox.full())
        return;
    inbox.push(j); // simlint: expect(wake-not-armed)
}

void
Worker::enqueueArmed(Job j)
{
    if (inbox.full())
        return;
    inbox.push(j);
    notifyWake();
}

void
Worker::enqueueBranchyArm(Job j, bool urgent)
{
    if (inbox.full())
        return;
    // Arming only on the urgent path leaves the quiet path asleep.
    inbox.push(j); // simlint: expect(wake-not-armed)
    if (urgent)
        notifyWake();
}

void
Worker::enqueueEitherPathArms(Job j, bool urgent)
{
    if (inbox.full())
        return;
    inbox.push(j);
    // Both branches arm: the wake post-dominates the push.
    if (urgent)
        notifyWake();
    else
        notifyWake();
}

void
Worker::localScratch(Job j)
{
    // A fifo declared inside the function is local scratch, not
    // scheduler-visible pending work: no wake needed.
    scusim::BoundedFifo<Job> tmp(4);
    if (!tmp.full())
        tmp.push(j);
}
