#include "lexer.hh"

#include <cctype>
#include <cstddef>

namespace simlint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse `allow(...)` / `expect(...)` clauses out of a comment that
 * contains the "simlint:" marker. Several rules may be listed,
 * comma-separated, and several clauses may follow one marker.
 */
void
parseDirectives(const std::string &comment, int line,
                std::vector<Directive> &out)
{
    std::size_t pos = comment.find("simlint:");
    if (pos == std::string::npos)
        return;
    pos += 8;
    while (pos < comment.size()) {
        while (pos < comment.size() &&
               (comment[pos] == ' ' || comment[pos] == ','))
            ++pos;
        Directive::Kind kind;
        if (comment.compare(pos, 6, "allow(") == 0) {
            kind = Directive::Kind::Allow;
            pos += 6;
        } else if (comment.compare(pos, 7, "expect(") == 0) {
            kind = Directive::Kind::Expect;
            pos += 7;
        } else {
            break;
        }
        std::size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            break;
        std::string rules = comment.substr(pos, close - pos);
        pos = close + 1;
        std::size_t start = 0;
        while (start <= rules.size()) {
            std::size_t comma = rules.find(',', start);
            std::string rule = rules.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            while (!rule.empty() && rule.front() == ' ')
                rule.erase(rule.begin());
            while (!rule.empty() && rule.back() == ' ')
                rule.pop_back();
            if (!rule.empty())
                out.push_back(Directive{kind, rule, line});
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
}

} // namespace

bool
LexedFile::allowed(const std::string &rule, int line) const
{
    for (const auto &d : directives) {
        if (d.kind == Directive::Kind::Allow && d.rule == rule &&
            (d.line == line || d.line == line - 1))
            return true;
    }
    return false;
}

LexedFile
lex(const std::string &path, const std::string &source)
{
    LexedFile out;
    out.path = path;

    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? source[i + k] : '\0';
    };

    while (i < n) {
        char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Preprocessor directive: skip to end of (continued) line,
        // but still honor control comments riding on it (an
        // `#include` carrying an allow() suppression) — without
        // this the directive would be silently dropped along with
        // the rest of the line.
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (source[i] == '\\' && peek(1) == '\n') {
                    i += 2;
                    ++line;
                    continue;
                }
                if (source[i] == '\n')
                    break;
                if (source[i] == '/' && peek(1) == '/') {
                    std::size_t end = source.find('\n', i);
                    if (end == std::string::npos)
                        end = n;
                    parseDirectives(source.substr(i, end - i), line,
                                    out.directives);
                    i = end;
                    break;
                }
                ++i;
            }
            continue;
        }
        atLineStart = false;

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            std::size_t end = source.find('\n', i);
            if (end == std::string::npos)
                end = n;
            parseDirectives(source.substr(i, end - i), line,
                            out.directives);
            i = end;
            continue;
        }

        // Block comment.
        if (c == '/' && peek(1) == '*') {
            std::size_t end = source.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            parseDirectives(source.substr(i, end - i), line,
                            out.directives);
            for (std::size_t k = i; k < end; ++k) {
                if (source[k] == '\n')
                    ++line;
            }
            i = end;
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"' &&
            (out.tokens.empty() || !out.tokens.back().is("::"))) {
            std::size_t open = source.find('(', i + 2);
            if (open != std::string::npos) {
                std::string delim =
                    source.substr(i + 2, open - (i + 2));
                std::string closer = ")" + delim + "\"";
                std::size_t end = source.find(closer, open + 1);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                for (std::size_t k = i; k < end; ++k) {
                    if (source[k] == '\n')
                        ++line;
                }
                out.tokens.push_back(
                    Token{Token::Kind::String, "\"\"", line});
                i = end;
                continue;
            }
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t j = i + 1;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\')
                    ++j;
                if (source[j] == '\n')
                    ++line;
                ++j;
            }
            out.tokens.push_back(
                Token{Token::Kind::String, std::string(1, quote),
                      line});
            i = j < n ? j + 1 : n;
            continue;
        }

        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(source[j]))
                ++j;
            out.tokens.push_back(
                Token{Token::Kind::Identifier,
                      source.substr(i, j - i), line});
            i = j;
            continue;
        }

        // Number (rough: covers ints, floats, hex, separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t j = i;
            while (j < n &&
                   (identChar(source[j]) || source[j] == '.' ||
                    source[j] == '\'' ||
                    ((source[j] == '+' || source[j] == '-') && j > i &&
                     (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                      source[j - 1] == 'p' || source[j - 1] == 'P'))))
                ++j;
            out.tokens.push_back(
                Token{Token::Kind::Number, source.substr(i, j - i),
                      line});
            i = j;
            continue;
        }

        // Punctuation. '::' and '->' are kept as single tokens
        // (rules match on them); everything else is one char.
        if (c == ':' && peek(1) == ':') {
            out.tokens.push_back(Token{Token::Kind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            out.tokens.push_back(Token{Token::Kind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back(
            Token{Token::Kind::Punct, std::string(1, c), line});
        ++i;
    }

    return out;
}

} // namespace simlint
