/**
 * @file
 * Minimal C++ lexer for simlint. Produces a token stream with line
 * numbers, strips comments and preprocessor directives, and collects
 * `simlint:` control comments (allow/expect directives) on the way.
 *
 * This is a *lexer*, not a parser: simlint's rules are heuristic
 * token-pattern matchers in the tradition of gem5's style checker,
 * precise enough to catch the simulator hazards they encode while
 * staying dependency-free and fast.
 */

#ifndef SIMLINT_LEXER_HH
#define SIMLINT_LEXER_HH

#include <string>
#include <vector>

namespace simlint
{

struct Token
{
    enum class Kind
    {
        Identifier,
        Number,
        String, ///< string or char literal (contents ignored)
        Punct,
    };

    Kind kind;
    std::string text;
    int line = 0;

    bool is(const char *t) const { return text == t; }
    bool isIdent() const { return kind == Kind::Identifier; }
};

/** A control comment: `allow(rule)` suppresses a finding,
 *  `expect(rule)` asserts one fires (self-test fixtures). Both ride
 *  in comments carrying the tool's name followed by a colon. */
struct Directive
{
    enum class Kind
    {
        Allow, ///< suppress a finding on this or the next line
        Expect ///< self-test: a finding must fire on this line
    };

    Kind kind;
    std::string rule;
    int line = 0;
};

/** Result of lexing one file. */
struct LexedFile
{
    std::string path; ///< root-relative path, used in diagnostics
    std::vector<Token> tokens;
    std::vector<Directive> directives;

    /** True if @p rule is allow()ed on @p line (or the line above). */
    bool allowed(const std::string &rule, int line) const;
};

/** Lex @p source (the contents of @p path). */
LexedFile lex(const std::string &path, const std::string &source);

} // namespace simlint

#endif // SIMLINT_LEXER_HH
