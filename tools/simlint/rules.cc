#include "rules.hh"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>

namespace simlint
{

namespace
{

// ---------------------------------------------------------------
// Structural analysis: brace spans (namespace / class / function /
// other) and per-token nesting, shared by the rules.
// ---------------------------------------------------------------

struct Span
{
    enum class Kind { Namespace, Class, Function, Other };
    Kind kind = Kind::Other;
    std::size_t open = 0;  ///< token index of '{'
    std::size_t close = 0; ///< token index of matching '}'
    int parent = -1;
    bool hasBaseList = false; ///< Class: derives from something
};

struct Analysis
{
    std::vector<Span> spans;
    /** Innermost enclosing span per token (-1 = file scope). */
    std::vector<int> innermost;
    /** Parenthesis nesting depth per token. */
    std::vector<int> parenDepth;
};

bool
isAnyOf(const Token &t, std::initializer_list<const char *> list)
{
    for (const char *s : list) {
        if (t.text == s)
            return true;
    }
    return false;
}

/** Index of the '(' matching the ')' at @p i, or npos. */
std::size_t
matchParenBack(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (toks[j].is(")"))
            ++depth;
        else if (toks[j].is("(") && --depth == 0)
            return j;
    }
    return static_cast<std::size_t>(-1);
}

/** Index of the ')' matching the '(' at @p i, or npos. */
std::size_t
matchParenFwd(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (toks[j].is("("))
            ++depth;
        else if (toks[j].is(")") && --depth == 0)
            return j;
    }
    return static_cast<std::size_t>(-1);
}

/** Classify the '{' at token @p i (see Span::Kind). */
Span
classifyBrace(const std::vector<Token> &toks, std::size_t i)
{
    Span s;
    s.open = i;

    // namespace Foo::Bar {  /  namespace {
    {
        std::size_t k = i;
        while (k > 0 && !toks[k - 1].is("namespace") &&
               (toks[k - 1].isIdent() || toks[k - 1].is("::")))
            --k;
        if (k > 0 && toks[k - 1].is("namespace")) {
            s.kind = Span::Kind::Namespace;
            return s;
        }
    }

    // Function body: '...)' [qualifiers / trailing return] '{'
    {
        std::size_t j = i;
        while (j > 0 &&
               (toks[j - 1].isIdent() ||
                toks[j - 1].kind == Token::Kind::Number ||
                isAnyOf(toks[j - 1],
                        {"::", "<", ">", "*", "&", "->", ","})) &&
               !isAnyOf(toks[j - 1],
                        {"class", "struct", "union", "enum",
                         "namespace", "else", "do", "try",
                         "return"}))
            --j;
        if (j > 0 && toks[j - 1].is(")")) {
            std::size_t open = matchParenBack(toks, j - 1);
            if (open != static_cast<std::size_t>(-1) && open > 0 &&
                isAnyOf(toks[open - 1],
                        {"if", "for", "while", "switch", "catch"})) {
                s.kind = Span::Kind::Other;
            } else {
                s.kind = Span::Kind::Function;
            }
            return s;
        }
    }

    // Class-like: window back to the previous ';' / '{' / '}'.
    {
        std::size_t w = i;
        while (w > 0 && !isAnyOf(toks[w - 1], {";", "{", "}"}))
            --w;
        for (std::size_t t = w; t < i; ++t) {
            if (isAnyOf(toks[t], {"class", "struct", "union",
                                  "enum"})) {
                s.kind = Span::Kind::Class;
                for (std::size_t b = t + 1; b < i; ++b) {
                    if (toks[b].is(":")) {
                        s.hasBaseList = true;
                        break;
                    }
                }
                return s;
            }
        }
    }

    s.kind = Span::Kind::Other;
    return s;
}

Analysis
analyze(const std::vector<Token> &toks)
{
    Analysis a;
    a.innermost.assign(toks.size(), -1);
    a.parenDepth.assign(toks.size(), 0);

    std::vector<int> stack;
    int paren = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("("))
            ++paren;
        a.parenDepth[i] = paren;
        if (t.is(")") && paren > 0)
            --paren;

        if (t.is("{")) {
            Span s = classifyBrace(toks, i);
            s.parent = stack.empty() ? -1 : stack.back();
            a.innermost[i] = s.parent;
            stack.push_back(static_cast<int>(a.spans.size()));
            a.spans.push_back(s);
            continue;
        }
        if (t.is("}")) {
            if (!stack.empty()) {
                a.spans[stack.back()].close = i;
                a.innermost[i] = stack.back();
                stack.pop_back();
            }
            continue;
        }
        a.innermost[i] = stack.empty() ? -1 : stack.back();
    }
    // Unclosed spans (truncated file): close at EOF.
    for (int idx : stack)
        a.spans[idx].close = toks.empty() ? 0 : toks.size() - 1;
    return a;
}

/** Innermost *function* span containing token @p i, or -1. */
int
enclosingFunction(const Analysis &a, std::size_t i)
{
    int s = a.innermost[i];
    while (s >= 0 && a.spans[s].kind != Span::Kind::Function)
        s = a.spans[s].parent;
    return s;
}

/**
 * True when the identifier at @p i is a free-function call target:
 * unqualified or std::-qualified (member calls and foreign-namespace
 * qualifications don't count).
 */
bool
isFreeCall(const std::vector<Token> &toks, std::size_t i)
{
    if (i == 0)
        return true;
    const Token &prev = toks[i - 1];
    if (prev.is(".") || prev.is("->"))
        return false;
    if (prev.is("::"))
        return i >= 2 && toks[i - 2].text == "std";
    return true;
}

/**
 * True when token @p i sits directly inside a class body — i.e. a
 * member *declaration* position, where `name(...)` is a signature,
 * not a call.
 */
bool
inClassDeclContext(const Analysis &a, std::size_t i)
{
    int s = a.innermost[i];
    return s >= 0 && a.spans[s].kind == Span::Kind::Class;
}

/**
 * Collect names of variables/members declared with the class
 * template @p tmpl: `tmpl<...> [&*const] name`.
 */
std::set<std::string>
templateVarNames(const std::vector<Token> &toks,
                 std::initializer_list<const char *> tmpls)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || !isAnyOf(toks[i], tmpls) ||
            !toks[i + 1].is("<"))
            continue;
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
            if (toks[j].is("<"))
                ++depth;
            else if (toks[j].is(">") && --depth == 0)
                break;
        }
        if (j >= toks.size())
            continue;
        ++j;
        while (j < toks.size() &&
               isAnyOf(toks[j], {"&", "*", "const"}))
            ++j;
        if (j < toks.size() && toks[j].isIdent())
            names.insert(toks[j].text);
    }
    return names;
}

// ---------------------------------------------------------------
// Rules
// ---------------------------------------------------------------

using FindingSink = std::vector<Finding>;

void
addFinding(FindingSink &out, const LexedFile &f, int line,
           const char *rule, std::string msg)
{
    out.push_back(Finding{f.path, line, rule, std::move(msg)});
}

/**
 * fifo-unguarded-push: BoundedFifo models hardware back-pressure;
 * push() on a full queue panics at runtime. Any function that pushes
 * must consult full() or space() first.
 */
void
ruleFifoUnguardedPush(const LexedFile &f, const Analysis &a,
                      FindingSink &out)
{
    const auto &toks = f.tokens;
    auto fifos = templateVarNames(toks, {"BoundedFifo"});
    if (fifos.empty())
        return;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!toks[i].isIdent() || !fifos.count(toks[i].text))
            continue;
        if (!(toks[i + 1].is(".") || toks[i + 1].is("->")))
            continue;
        if (!toks[i + 2].is("push") || !toks[i + 3].is("("))
            continue;
        int fn = enclosingFunction(a, i);
        if (fn < 0)
            continue;
        const Span &span = a.spans[fn];
        bool guarded = false;
        for (std::size_t k = span.open; k <= span.close; ++k) {
            if (toks[k].isIdent() &&
                (toks[k].is("full") || toks[k].is("space"))) {
                guarded = true;
                break;
            }
        }
        if (!guarded) {
            addFinding(out, f, toks[i].line, "fifo-unguarded-push",
                       "BoundedFifo '" + toks[i].text +
                           "'.push() with no full()/space() "
                           "back-pressure check in the enclosing "
                           "function");
        }
    }
}

/**
 * nondeterminism: wall-clock and OS entropy sources make runs
 * irreproducible; all simulator randomness must flow through
 * common/rng.hh and all time through the simulated clock.
 */
void
ruleNondeterminism(const LexedFile &f, const Analysis &a,
                   FindingSink &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (t.is("random_device")) {
            addFinding(out, f, t.line, "nondeterminism",
                       "std::random_device draws OS entropy; seed a "
                       "deterministic scusim::Rng instead");
            continue;
        }
        bool call = i + 1 < toks.size() && toks[i + 1].is("(") &&
                    isFreeCall(toks, i) &&
                    !inClassDeclContext(a, i);
        if (call && isAnyOf(t, {"rand", "srand", "rand_r",
                                "drand48"})) {
            addFinding(out, f, t.line, "nondeterminism",
                       "'" + t.text +
                           "()' is not reproducible across "
                           "platforms; use scusim::Rng");
            continue;
        }
        if (call && t.is("time")) {
            addFinding(out, f, t.line, "nondeterminism",
                       "'time()' reads the wall clock; simulated "
                       "time must come from Simulation::now()");
            continue;
        }
        if (isAnyOf(t, {"steady_clock", "system_clock",
                        "high_resolution_clock"}) &&
            i + 2 < toks.size() && toks[i + 1].is("::") &&
            toks[i + 2].is("now")) {
            addFinding(out, f, t.line, "nondeterminism",
                       "'" + t.text +
                           "::now()' reads the wall clock; results "
                           "derived from it are not reproducible");
        }
    }
}

/**
 * unordered-iteration: iterating an unordered container feeds its
 * unspecified bucket order into whatever the loop computes — stats,
 * event order, emitted elements. Sim code must iterate ordered
 * containers (or sort first).
 */
void
ruleUnorderedIteration(const LexedFile &f, const Analysis &a,
                       FindingSink &out)
{
    (void)a;
    const auto &toks = f.tokens;
    auto names = templateVarNames(
        toks, {"unordered_map", "unordered_set", "unordered_multimap",
               "unordered_multiset"});
    if (names.empty())
        return;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        // name.begin() / name->begin()
        if (toks[i].isIdent() && names.count(toks[i].text) &&
            i + 3 < toks.size() &&
            (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
            toks[i + 2].is("begin") && toks[i + 3].is("(")) {
            addFinding(out, f, toks[i].line, "unordered-iteration",
                       "iteration over unordered container '" +
                           toks[i].text +
                           "': bucket order is unspecified and "
                           "nondeterministic across libraries");
        }
        // for ( ... : name )
        if (!toks[i].is("for") || !toks[i + 1].is("("))
            continue;
        std::size_t close = matchParenFwd(toks, i + 1);
        if (close == static_cast<std::size_t>(-1))
            continue;
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (toks[j].is("("))
                ++depth;
            else if (toks[j].is(")"))
                --depth;
            else if (toks[j].is(":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (!colon)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].isIdent() && names.count(toks[j].text)) {
                addFinding(
                    out, f, toks[i].line, "unordered-iteration",
                    "range-for over unordered container '" +
                        toks[j].text +
                        "': bucket order is unspecified and feeds "
                        "the loop's results");
                break;
            }
        }
    }
}

/**
 * direct-output: simulator library code must report through
 * common/logging (levelled, mutex-serialized for the parallel
 * executor); raw stdio interleaves across worker threads and cannot
 * be filtered.
 */
void
ruleDirectOutput(const LexedFile &f, const Analysis &a,
                 FindingSink &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (isAnyOf(t, {"cout", "cerr", "clog"})) {
            bool qualifiedStd =
                i >= 2 && toks[i - 1].is("::") &&
                toks[i - 2].text == "std";
            bool bare = i == 0 || (!toks[i - 1].is("::") &&
                                   !toks[i - 1].is(".") &&
                                   !toks[i - 1].is("->"));
            if (qualifiedStd || bare) {
                addFinding(out, f, t.line, "direct-output",
                           "std::" + t.text +
                               " bypasses common/logging; use "
                               "inform()/warn() or take an "
                               "std::ostream parameter");
            }
            continue;
        }
        if (i + 1 < toks.size() && toks[i + 1].is("(") &&
            isFreeCall(toks, i) && !inClassDeclContext(a, i) &&
            isAnyOf(t, {"printf", "fprintf", "vprintf", "vfprintf",
                        "puts", "putchar", "fputs"})) {
            addFinding(out, f, t.line, "direct-output",
                       "'" + t.text +
                           "()' bypasses common/logging (not "
                           "levelled, not serialized across "
                           "executor threads)");
        }
    }
}

/**
 * missing-override: the simulator's polymorphic contracts (Clocked,
 * MemLevel, StatBase, HashTableBase) are how components plug into
 * the timing loop; a signature drift silently unhooks a component.
 * Known interface methods in derived classes must say 'override'.
 */
void
ruleMissingOverride(const LexedFile &f, const Analysis &a,
                    FindingSink &out)
{
    const auto &toks = f.tokens;
    for (std::size_t si = 0; si < a.spans.size(); ++si) {
        const Span &cls = a.spans[si];
        if (cls.kind != Span::Kind::Class || !cls.hasBaseList)
            continue;
        for (std::size_t i = cls.open + 1;
             i < cls.close && i + 1 < toks.size(); ++i) {
            if (a.innermost[i] != static_cast<int>(si))
                continue;
            const Token &t = toks[i];
            if (!t.isIdent() ||
                !isAnyOf(t, {"tick", "busy", "nextWakeTick",
                             "access", "dump", "reset"}))
                continue;
            if (!toks[i + 1].is("("))
                continue;
            if (i > 0 && (toks[i - 1].is(".") ||
                          toks[i - 1].is("->") ||
                          toks[i - 1].is("::") ||
                          toks[i - 1].is("=") ||
                          toks[i - 1].is("(") ||
                          toks[i - 1].is(",") ||
                          toks[i - 1].is("return")))
                continue;
            std::size_t close = matchParenFwd(toks, i + 1);
            if (close == static_cast<std::size_t>(-1))
                continue;
            bool hasOverride = false;
            std::size_t j = close + 1;
            for (; j < toks.size(); ++j) {
                if (toks[j].is(";") || toks[j].is("{"))
                    break;
                if (toks[j].is("override") || toks[j].is("final"))
                    hasOverride = true;
            }
            if (!hasOverride) {
                addFinding(out, f, t.line, "missing-override",
                           "'" + t.text +
                               "()' matches a simulator interface "
                               "method in a derived class but is "
                               "not marked 'override'");
            }
        }
    }
}

/**
 * raw-stat-counter: a mutable arithmetic variable at namespace/file
 * scope is exactly how ad-hoc statistics escape the StatGroup
 * registry — it survives across runs, breaks the executor's per-run
 * isolation and memoization, and never shows up in stats dumps.
 */
void
ruleRawStatCounter(const LexedFile &f, const Analysis &a,
                   FindingSink &out)
{
    static const std::set<std::string> typeSet = {
        "int",      "unsigned", "long",     "short",    "float",
        "double",   "bool",     "char",     "size_t",   "int8_t",
        "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "intptr_t", "uintptr_t", "Tick",
        "Addr",     "NodeId",   "EdgeId",   "Weight"};

    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent() || !typeSet.count(toks[i].text))
            continue;
        if (a.parenDepth[i] != 0)
            continue;
        int span = a.innermost[i];
        if (span >= 0 &&
            a.spans[span].kind != Span::Kind::Namespace)
            continue;
        // Reject if the declaration head (back to the previous
        // ';' / '{' / '}') contains a disqualifier.
        bool disqualified = false;
        for (std::size_t j = i; j-- > 0;) {
            if (isAnyOf(toks[j], {";", "{", "}"}))
                break;
            if (isAnyOf(toks[j],
                        {"const", "constexpr", "constinit", "extern",
                         "using", "typedef", "template", "friend",
                         "operator", "thread_local", "enum",
                         "class", "struct"})) {
                disqualified = true;
                break;
            }
        }
        if (disqualified)
            continue;
        // Skip over the rest of the type tokens to the declarator.
        std::size_t j = i;
        while (j < toks.size() && toks[j].isIdent() &&
               typeSet.count(toks[j].text))
            ++j;
        while (j < toks.size() && isAnyOf(toks[j], {"*", "&"}))
            ++j;
        if (j >= toks.size() || !toks[j].isIdent())
            continue;
        if (isAnyOf(toks[j], {"const", "constexpr"}))
            continue;
        std::size_t after = j + 1;
        if (after >= toks.size())
            continue;
        if (toks[after].is("=") || toks[after].is(";") ||
            toks[after].is("{") || toks[after].is("[")) {
            addFinding(out, f, toks[j].line, "raw-stat-counter",
                       "mutable namespace-scope counter '" +
                           toks[j].text +
                           "' bypasses the Stat registry and "
                           "survives across runs (breaks per-run "
                           "isolation); use a stats::Scalar owned "
                           "by a component");
            i = after;
        }
    }
}

/**
 * stat-registered-after-start: a stat constructed as a function
 * local registers with its StatGroup only when that function runs —
 * typically after the simulation started — so it misses dumps and
 * resets that already happened and silently unregisters again on
 * scope exit. Stats must be members, constructed while the component
 * tree is built (member declarations and mem-init lists don't match
 * the local-declaration shape this rule looks for).
 */
void
ruleStatRegisteredAfterStart(const LexedFile &f, const Analysis &a,
                             FindingSink &out)
{
    static const std::set<std::string> statTypes = {
        "Scalar", "Formula", "Distribution", "Timeseries"};

    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].isIdent() || !statTypes.count(toks[i].text))
            continue;
        // Local *declaration* shape: `Scalar name(...)`. Temporaries
        // (`Scalar(...)`), members (`Scalar name;`), template args
        // (`make_unique<Timeseries>(...)`) and parameters all differ.
        if (!toks[i + 1].isIdent() || !toks[i + 2].is("("))
            continue;
        // stats:: / scusim::stats:: qualification is fine; any other
        // namespace's Scalar is not ours.
        if (i >= 2 && toks[i - 1].is("::") &&
            toks[i - 2].text != "stats")
            continue;
        if (a.parenDepth[i] != 0)
            continue;
        if (enclosingFunction(a, i) < 0)
            continue;
        addFinding(out, f, toks[i].line,
                   "stat-registered-after-start",
                   "stat '" + toks[i + 1].text +
                       "' constructed inside a function body "
                       "registers with its StatGroup after the "
                       "simulation may have started (and "
                       "unregisters at scope exit); make it a "
                       "member built with the component tree");
    }
}

/**
 * swallowed-sim-error: a `catch (...)` handler also catches SimError,
 * the typed failure the supervision stack depends on — a handler that
 * neither rethrows nor mentions the failure taxonomy turns a
 * classified panic/deadlock/timeout into a silently "successful" run.
 */
void
ruleSwallowedSimError(const LexedFile &f, const Analysis &a,
                      FindingSink &out)
{
    (void)a;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 5 < toks.size(); ++i) {
        // catch ( . . . )  — '...' lexes as three '.' tokens.
        if (!toks[i].is("catch") || !toks[i + 1].is("(") ||
            !toks[i + 2].is(".") || !toks[i + 3].is(".") ||
            !toks[i + 4].is(".") || !toks[i + 5].is(")"))
            continue;
        std::size_t open = i + 6;
        if (open >= toks.size() || !toks[open].is("{"))
            continue;
        // Scan the handler body for evidence the failure survives:
        // a rethrow, or the SimError / FailureKind types being
        // consulted to record what happened.
        int depth = 0;
        bool handled = false;
        std::size_t j = open;
        for (; j < toks.size(); ++j) {
            if (toks[j].is("{"))
                ++depth;
            else if (toks[j].is("}") && --depth == 0)
                break;
            else if (toks[j].is("throw") || toks[j].is("SimError") ||
                     toks[j].is("FailureKind"))
                handled = true;
        }
        if (!handled) {
            addFinding(out, f, toks[i].line, "swallowed-sim-error",
                       "catch (...) swallows SimError without "
                       "recording a FailureKind; rethrow, or catch "
                       "SimError first and classify the failure");
        }
        i = j;
    }
}

/**
 * tick-every-cycle: a Clocked component's nextWakeTick() is the
 * event-driven scheduler's only lever — a body that unconditionally
 * answers "the very next tick" (no branch, never tickNever, returns
 * an expression built with '+') degrades the whole simulation back
 * to per-tick polling of that component. Wakes must be derived from
 * real component state: a cached earliest-wake tick, or tickNever
 * when idle.
 */
void
ruleTickEveryCycle(const LexedFile &f, const Analysis &a,
                   FindingSink &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || toks[i].text != "nextWakeTick" ||
            !toks[i + 1].is("("))
            continue;
        // Definition context only: inline in a class that derives
        // from something (the Clocked pattern), or an out-of-line
        // qualified member (`Engine::nextWakeTick`). Calls are
        // preceded by '.' / '->' and never grow a body anyway.
        bool inDerivedClass = false;
        const int si = a.innermost[i];
        if (si >= 0 &&
            a.spans[si].kind == Span::Kind::Class &&
            a.spans[si].hasBaseList)
            inDerivedClass = true;
        const bool qualified =
            i >= 2 && toks[i - 1].is("::") && toks[i - 2].isIdent();
        if (!inDerivedClass && !qualified)
            continue;
        const std::size_t close = matchParenFwd(toks, i + 1);
        if (close == static_cast<std::size_t>(-1))
            continue;
        // Skip trailing qualifiers to the body; a ';' first means a
        // declaration (or a call expression) — nothing to inspect.
        std::size_t open = close + 1;
        while (open < toks.size() &&
               isAnyOf(toks[open],
                       {"const", "override", "final", "noexcept"}))
            ++open;
        if (open >= toks.size() || !toks[open].is("{"))
            continue;
        // The body unconditionally schedules the next tick when it
        // never branches, never mentions tickNever, and its return
        // value is additive ("now + 1" and friends).
        int depth = 0;
        bool conditional = false;
        bool additiveReturn = false;
        bool inReturn = false;
        std::size_t j = open;
        for (; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.is("{"))
                ++depth;
            else if (t.is("}") && --depth == 0)
                break;
            else if (isAnyOf(t, {"if", "switch", "while", "for"}) ||
                     t.is("?") || t.is("tickNever"))
                conditional = true;
            else if (t.is("return"))
                inReturn = true;
            else if (t.is(";"))
                inReturn = false;
            else if (inReturn &&
                     t.text.find('+') != std::string::npos)
                additiveReturn = true;
        }
        if (!conditional && additiveReturn) {
            addFinding(out, f, toks[i].line, "tick-every-cycle",
                       "nextWakeTick() unconditionally returns the "
                       "next tick, degrading the event-driven "
                       "scheduler to per-tick polling of this "
                       "component; derive the wake from component "
                       "state (cache the earliest wake, return "
                       "tickNever when idle)");
        }
        i = j;
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleRegistry()
{
    static const std::vector<RuleInfo> registry = {
        {"fifo-unguarded-push",
         "BoundedFifo::push() without a full()/space() back-pressure "
         "check in the enclosing function",
         false},
        {"nondeterminism",
         "wall-clock / OS-entropy source in simulation code "
         "(random_device, rand, time, *_clock::now)",
         false},
        {"unordered-iteration",
         "iteration over an unordered container (bucket order is "
         "unspecified and feeds results)",
         false},
        {"direct-output",
         "raw stdout/stderr (printf, std::cout, ...) bypassing "
         "common/logging in simulator library code",
         true},
        {"missing-override",
         "simulator interface method (tick/busy/access/dump/...) "
         "redeclared in a derived class without 'override'",
         false},
        {"raw-stat-counter",
         "mutable namespace-scope arithmetic variable in library "
         "code (ad-hoc stat escaping the Stat registry)",
         true},
        {"swallowed-sim-error",
         "catch (...) handler that neither rethrows nor records a "
         "FailureKind (silently discards classified SimError "
         "failures)",
         true},
        {"stat-registered-after-start",
         "stats::Scalar/Formula/Distribution/Timeseries constructed "
         "as a function local (registers with its StatGroup after "
         "the simulation started, unregisters at scope exit)",
         true},
        {"tick-every-cycle",
         "nextWakeTick() body that unconditionally returns the next "
         "tick (no branch, no tickNever) — degrades the event-driven "
         "scheduler to per-tick polling of the component",
         false},
    };
    return registry;
}

std::vector<Finding>
runRules(const LexedFile &file, bool treatAsSrc)
{
    Analysis a = analyze(file.tokens);
    bool inSrc =
        treatAsSrc || file.path.rfind("src/", 0) == 0;

    std::vector<Finding> found;
    ruleFifoUnguardedPush(file, a, found);
    ruleNondeterminism(file, a, found);
    ruleUnorderedIteration(file, a, found);
    ruleMissingOverride(file, a, found);
    ruleTickEveryCycle(file, a, found);
    if (inSrc) {
        ruleDirectOutput(file, a, found);
        ruleRawStatCounter(file, a, found);
        ruleSwallowedSimError(file, a, found);
        ruleStatRegisteredAfterStart(file, a, found);
    }

    std::vector<Finding> kept;
    for (auto &fi : found) {
        if (!file.allowed(fi.rule, fi.line))
            kept.push_back(std::move(fi));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.line != y.line)
                      return x.line < y.line;
                  return x.rule < y.rule;
              });
    return kept;
}

} // namespace simlint
