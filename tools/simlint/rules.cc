#include "rules.hh"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>

#include "cfg.hh"
#include "dataflow.hh"

namespace simlint
{

namespace
{

// ---------------------------------------------------------------
// Shared context: structure + CFGs + symbol tables, built once per
// file and handed to every rule.
// ---------------------------------------------------------------

struct Engine
{
    const LexedFile &file;
    Structure st;
    std::vector<Cfg> cfgs;
    /** BoundedFifo-typed variables/members (incl. companion header). */
    SymbolTable fifoSyms;

    explicit Engine(const LexedFile &f, const LexedFile *companion)
        : file(f), st(analyzeStructure(f.tokens)),
          cfgs(buildCfgs(f, st))
    {
        fifoSyms.collect(f.tokens, {"BoundedFifo"});
        if (companion)
            fifoSyms.collect(companion->tokens, {"BoundedFifo"},
                             /*companion=*/true);
    }

    /** CFG whose body contains token @p tok, or nullptr. */
    const Cfg *
    cfgAt(std::size_t tok) const
    {
        for (const Cfg &c : cfgs) {
            if (tok >= c.bodyOpen && tok <= c.bodyClose)
                return &c;
        }
        return nullptr;
    }
};

/**
 * True when the identifier at @p i is a free-function call target:
 * unqualified or std::-qualified (member calls and foreign-namespace
 * qualifications don't count).
 */
bool
isFreeCall(const std::vector<Token> &toks, std::size_t i)
{
    if (i == 0)
        return true;
    const Token &prev = toks[i - 1];
    if (prev.is(".") || prev.is("->"))
        return false;
    if (prev.is("::"))
        return i >= 2 && toks[i - 2].text == "std";
    return true;
}

/**
 * True when token @p i sits directly inside a class body — i.e. a
 * member *declaration* position, where `name(...)` is a signature,
 * not a call.
 */
bool
inClassDeclContext(const Structure &a, std::size_t i)
{
    int s = a.innermost[i];
    return s >= 0 && a.spans[s].kind == Span::Kind::Class;
}

/**
 * Collect names of variables/members declared with the class
 * template @p tmpls: `tmpl<...> [&*const] name`.
 */
std::set<std::string>
templateVarNames(const std::vector<Token> &toks,
                 std::initializer_list<const char *> tmpls)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || !isAnyOf(toks[i], tmpls) ||
            !toks[i + 1].is("<"))
            continue;
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
            if (toks[j].is("<"))
                ++depth;
            else if (toks[j].is(">") && --depth == 0)
                break;
        }
        if (j >= toks.size())
            continue;
        ++j;
        while (j < toks.size() &&
               isAnyOf(toks[j], {"&", "*", "const"}))
            ++j;
        if (j < toks.size() && toks[j].isIdent())
            names.insert(toks[j].text);
    }
    return names;
}

using FindingSink = std::vector<Finding>;

void
addFinding(FindingSink &out, const LexedFile &f, int line,
           const char *rule, std::string msg)
{
    out.push_back(Finding{f.path, line, rule, std::move(msg)});
}

// ---------------------------------------------------------------
// Flow-sensitive rules (CFG + must-dataflow)
// ---------------------------------------------------------------

/**
 * fifo-unguarded-push: BoundedFifo models hardware back-pressure;
 * push() on a full queue panics at runtime. v2 semantics: a
 * full()/space() consult on the same fifo must hold on *every* path
 * from the function entry to the push (guard-dominates-push via
 * forward must-analysis), replacing the v1 "full()/space() appears
 * somewhere in the enclosing function" approximation. Guards inside
 * the surrounding function now correctly cover pushes in nested
 * lambdas, and a guard that only exists on some paths (or only
 * after the push) no longer counts.
 */
void
ruleFifoUnguardedPush(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    for (const Cfg &cfg : e.cfgs) {
        // Map each pushed/consulted fifo name to a fact id lazily.
        std::map<std::string, int> fact;
        auto factOf = [&](const std::string &n) {
            auto it = fact.find(n);
            if (it != fact.end())
                return it->second;
            int id = static_cast<int>(fact.size());
            fact.emplace(n, id);
            return id;
        };

        struct PushSite
        {
            std::size_t tok;
            std::string name;
        };
        std::vector<PushSite> pushes;
        std::vector<std::pair<std::size_t, std::string>> guards;

        for (std::size_t i = cfg.bodyOpen;
             i + 3 <= cfg.bodyClose; ++i) {
            if (!toks[i].isIdent() ||
                !e.fifoSyms.has(toks[i].text))
                continue;
            if (!(toks[i + 1].is(".") || toks[i + 1].is("->")))
                continue;
            if (!toks[i + 3].is("("))
                continue;
            if (toks[i + 2].is("push"))
                pushes.push_back({i, toks[i].text});
            else if (toks[i + 2].is("full") ||
                     toks[i + 2].is("space"))
                guards.push_back({i + 2, toks[i].text});
        }
        if (pushes.empty())
            continue;

        for (const auto &p : pushes)
            factOf(p.name);
        for (const auto &g : guards)
            factOf(g.second);

        ForwardMust fm(cfg, static_cast<int>(fact.size()));
        for (const auto &[tok, name] : guards)
            fm.genAt(tok, fact[name]);
        fm.solve();

        for (const auto &p : pushes) {
            if (fm.holdsBefore(p.tok, fact[p.name]))
                continue;
            addFinding(out, e.file, toks[p.tok].line,
                       "fifo-unguarded-push",
                       "BoundedFifo '" + p.name +
                           "'.push() is reachable without a "
                           "full()/space() back-pressure consult on "
                           "every path (guard must dominate the "
                           "push)");
        }
    }
}

/**
 * wake-not-armed: under the event-driven scheduler, a Clocked
 * component that gains pending work outside tick() must call
 * notifyWake(), or the scheduler may never service it (a hang the
 * polling oracle hides). Trigger: in a file that defines T::tick(),
 * any other member of T that pushes onto a (non-local) BoundedFifo
 * must reach a notifyWake() on every path from the push to the
 * function exit (backward must-analysis — the arm has to
 * post-dominate the enqueue).
 */
void
ruleWakeNotArmed(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    std::set<std::string> clockedScopes;
    for (const Cfg &c : e.cfgs) {
        if (c.fnName == "tick" && !c.scopeName.empty())
            clockedScopes.insert(c.scopeName);
    }
    if (clockedScopes.empty())
        return;

    for (const Cfg &cfg : e.cfgs) {
        if (!clockedScopes.count(cfg.scopeName))
            continue;
        // tick() itself is re-derived by the scheduler after every
        // delivery; constructors run before the scheduler arms.
        if (cfg.fnName == "tick" || cfg.fnName == cfg.scopeName ||
            cfg.fnName.empty())
            continue;

        std::vector<std::size_t> pushes;
        std::vector<std::size_t> arms;
        for (std::size_t i = cfg.bodyOpen;
             i + 3 <= cfg.bodyClose; ++i) {
            if (toks[i].isIdent() && toks[i].is("notifyWake") &&
                i + 1 <= cfg.bodyClose && toks[i + 1].is("(")) {
                arms.push_back(i);
                continue;
            }
            if (!toks[i].isIdent() ||
                !e.fifoSyms.has(toks[i].text))
                continue;
            // A fifo declared inside this very function is local
            // scratch, not scheduler-visible pending work.
            std::size_t decl = e.fifoSyms.declTokOf(toks[i].text);
            if (decl != static_cast<std::size_t>(-1) &&
                decl >= cfg.bodyOpen && decl <= cfg.bodyClose)
                continue;
            if ((toks[i + 1].is(".") || toks[i + 1].is("->")) &&
                toks[i + 2].is("push") && toks[i + 3].is("("))
                pushes.push_back(i);
        }
        if (pushes.empty())
            continue;

        BackwardMust bm(cfg, 1);
        for (std::size_t a : arms)
            bm.genAt(a, 0);
        bm.solve();

        for (std::size_t p : pushes) {
            if (bm.holdsAfter(p, 0))
                continue;
            addFinding(out, e.file, toks[p].line, "wake-not-armed",
                       "'" + cfg.scopeName + "::" + cfg.fnName +
                           "' enqueues pending work outside tick() "
                           "but notifyWake() does not post-dominate "
                           "the push; the event-driven scheduler "
                           "may never service it");
        }
    }
}

/**
 * device-zero-hardcode: code that receives a DeviceId but indexes a
 * per-device resource with literal 0 silently reads device 0's
 * state for every shard. The literal also counts when folded
 * through a local `const`/`constexpr` variable in the same function
 * (`const DeviceId primary = 0; ... memory(primary)`): naming the
 * zero does not un-hardcode it. Flow exception: a dominating
 * comparison of the DeviceId parameter against a literal (e.g.
 * `if (dev == 0)`) marks deliberate device-0 special-casing.
 */
void
ruleDeviceZeroHardcode(const Engine &e, FindingSink &out)
{
    static const std::set<std::string> accessors = {
        "gpuDevice", "scuDevice",        "memory",
        "addressSpace", "activitySnapshot", "scuSection",
        "fragment",  "drain",            "link",
        "canSend"};

    const auto &toks = e.file.tokens;
    for (const Cfg &cfg : e.cfgs) {
        if (cfg.sigClose <= cfg.sigOpen)
            continue;
        // DeviceId-typed parameters of this function.
        std::set<std::string> devParams;
        for (std::size_t i = cfg.sigOpen + 1; i < cfg.sigClose;
             ++i) {
            if (!toks[i].is("DeviceId"))
                continue;
            std::size_t j = i + 1;
            while (j < cfg.sigClose &&
                   isAnyOf(toks[j], {"&", "*", "const"}))
                ++j;
            if (j < cfg.sigClose && toks[j].isIdent())
                devParams.insert(toks[j].text);
        }
        if (devParams.empty())
            continue;

        // Local const/constexpr variables initialized to exactly
        // the literal 0 (`const DeviceId d = 0;` / `{0}`): uses of
        // such a name are zeros the compiler folds, so the rule
        // treats them as the literal itself.
        std::set<std::string> zeroConsts;
        for (std::size_t i = cfg.bodyOpen; i + 3 <= cfg.bodyClose;
             ++i) {
            if (!toks[i].is("const") && !toks[i].is("constexpr"))
                continue;
            std::string name;
            for (std::size_t j = i + 1; j + 2 <= cfg.bodyClose;
                 ++j) {
                if (toks[j].is(";"))
                    break;
                if ((toks[j].is("=") && toks[j + 1].is("0") &&
                     toks[j + 2].is(";")) ||
                    (toks[j].is("{") && toks[j + 1].is("0") &&
                     toks[j + 2].is("}"))) {
                    if (!name.empty())
                        zeroConsts.insert(name);
                    break;
                }
                if (toks[j].isIdent())
                    name = toks[j].text;
            }
        }

        // Fact 0: the DeviceId was explicitly compared against a
        // literal (deliberate special-casing).
        ForwardMust fm(cfg, 1);
        for (std::size_t i = cfg.bodyOpen; i + 2 <= cfg.bodyClose;
             ++i) {
            bool cmp = false;
            if (toks[i].isIdent() && devParams.count(toks[i].text) &&
                (toks[i + 1].is("=") || toks[i + 1].is("!")) &&
                toks[i + 2].is("="))
                cmp = true;
            if (toks[i].kind == Token::Kind::Number &&
                toks[i + 1].is("=") && toks[i + 2].is("=") &&
                i + 3 <= cfg.bodyClose && toks[i + 3].isIdent() &&
                devParams.count(toks[i + 3].text))
                cmp = true;
            if (cmp)
                fm.genAt(i, 0);
        }
        fm.solve();

        for (std::size_t i = cfg.bodyOpen; i + 1 <= cfg.bodyClose;
             ++i) {
            if (!toks[i].isIdent() || !accessors.count(toks[i].text))
                continue;
            if (!toks[i + 1].is("("))
                continue;
            std::size_t close = matchParenFwd(toks, i + 1);
            if (close == static_cast<std::size_t>(-1))
                continue;
            // A literal 0 — or a const-folded local zero constant —
            // as a complete top-level argument.
            int depth = 0;
            bool zeroArg = false;
            std::string folded;
            for (std::size_t k = i + 1; k <= close && !zeroArg;
                 ++k) {
                if (toks[k].is("("))
                    ++depth;
                else if (toks[k].is(")"))
                    --depth;
                else if (depth == 1 &&
                         (toks[k].is("0") ||
                          (toks[k].isIdent() &&
                           zeroConsts.count(toks[k].text))) &&
                         (toks[k - 1].is("(") ||
                          toks[k - 1].is(",")) &&
                         (toks[k + 1].is(")") ||
                          toks[k + 1].is(","))) {
                    zeroArg = true;
                    if (!toks[k].is("0"))
                        folded = toks[k].text;
                }
            }
            if (!zeroArg)
                continue;
            if (fm.holdsBefore(i, 0))
                continue; // dominated by an explicit device check
            const std::string what =
                folded.empty()
                    ? "'" + toks[i].text + "(0)' hardcodes device 0"
                    : "'" + toks[i].text + "(" + folded +
                          ")' hardcodes device 0 through local "
                          "constant '" +
                          folded + "'";
            addFinding(out, e.file, toks[i].line,
                       "device-zero-hardcode",
                       what +
                           " inside code that receives a DeviceId; "
                           "index with the parameter (or guard "
                           "with an explicit device comparison)");
        }
    }
}

/**
 * icn-credit-leak: queue completion paths must return the credit —
 * once a function both inspects (front()/top()) and pops a queue, an
 * inspect that *starts* consuming (a pop is reachable on some path)
 * but does not finish on every path (pop does not post-dominate)
 * leaves the element enqueued on the other paths: the message is
 * re-delivered next tick and the link slot (its flow-control credit)
 * is never freed. Two exemptions: a loop-header inspection
 * (`while (!q.empty() && q.front() <= now)`) is the scan idiom, and
 * an inspect from which no pop is reachable at all is a pure peek
 * (e.g. reading the earliest wake tick after a drain loop) — the
 * hazard is the may/must disagreement, not reading per se.
 */
/**
 * True when some pop site in @p pops is reachable from the inspect
 * at token @p s: later in the same block, or in any block reachable
 * through successor edges (cycles included — re-reaching the
 * inspect's own block makes its earlier pops reachable too).
 */
bool
popMayFollow(const Cfg &cfg, const std::vector<std::size_t> &pops,
             std::size_t s)
{
    int b = cfg.blockAt(s);
    if (b < 0)
        return false;
    for (std::size_t p : pops) {
        if (cfg.blockAt(p) == b && p > s)
            return true;
    }
    std::vector<bool> seen(cfg.blocks.size(), false);
    std::vector<int> stack(cfg.blocks[b].succs.begin(),
                           cfg.blocks[b].succs.end());
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        if (seen[cur])
            continue;
        seen[cur] = true;
        for (std::size_t p : pops) {
            if (cfg.blockAt(p) == cur)
                return true;
        }
        for (int nxt : cfg.blocks[cur].succs)
            stack.push_back(nxt);
    }
    return false;
}

void
ruleIcnCreditLeak(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    for (const Cfg &cfg : e.cfgs) {
        std::map<std::string, std::vector<std::size_t>> fronts,
            pops;
        for (std::size_t i = cfg.bodyOpen + 1;
             i + 2 <= cfg.bodyClose; ++i) {
            if (!toks[i].isIdent())
                continue;
            if (!(toks[i + 1].is(".") || toks[i + 1].is("->")))
                continue;
            if (!toks[i + 2].isIdent() ||
                i + 3 > cfg.bodyClose || !toks[i + 3].is("("))
                continue;
            if (toks[i + 2].is("front") || toks[i + 2].is("top"))
                fronts[toks[i].text].push_back(i + 2);
            else if (toks[i + 2].is("pop"))
                pops[toks[i].text].push_back(i + 2);
        }

        for (const auto &[name, sites] : fronts) {
            auto pit = pops.find(name);
            if (pit == pops.end())
                continue; // inspect-only (peek accessors) is fine
            BackwardMust bm(cfg, 1);
            for (std::size_t p : pit->second)
                bm.genAt(p, 0);
            bm.solve();
            for (std::size_t s : sites) {
                int b = cfg.blockAt(s);
                if (b >= 0 && cfg.isLoopHeader(b))
                    continue; // scan guard in a loop condition
                if (!popMayFollow(cfg, pit->second, s))
                    continue; // pure peek: nothing started consuming
                if (bm.holdsAfter(s, 0))
                    continue;
                addFinding(out, e.file, toks[s].line,
                           "icn-credit-leak",
                           "'" + name +
                               "' is inspected here but pop() does "
                               "not post-dominate the access: on "
                               "some path the element stays queued "
                               "and its credit is never returned");
            }
        }
    }
}

// ---------------------------------------------------------------
// Token-pattern rules (v1, ported onto the shared structure layer)
// ---------------------------------------------------------------

/**
 * nondeterminism: wall-clock and OS entropy sources make runs
 * irreproducible; all simulator randomness must flow through
 * common/rng.hh and all time through the simulated clock.
 */
void
ruleNondeterminism(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (t.is("random_device")) {
            addFinding(out, e.file, t.line, "nondeterminism",
                       "std::random_device draws OS entropy; seed a "
                       "deterministic scusim::Rng instead");
            continue;
        }
        bool call = i + 1 < toks.size() && toks[i + 1].is("(") &&
                    isFreeCall(toks, i) &&
                    !inClassDeclContext(a, i);
        if (call && isAnyOf(t, {"rand", "srand", "rand_r",
                                "drand48"})) {
            addFinding(out, e.file, t.line, "nondeterminism",
                       "'" + t.text +
                           "()' is not reproducible across "
                           "platforms; use scusim::Rng");
            continue;
        }
        if (call && t.is("time")) {
            addFinding(out, e.file, t.line, "nondeterminism",
                       "'time()' reads the wall clock; simulated "
                       "time must come from Simulation::now()");
            continue;
        }
        if (isAnyOf(t, {"steady_clock", "system_clock",
                        "high_resolution_clock"}) &&
            i + 2 < toks.size() && toks[i + 1].is("::") &&
            toks[i + 2].is("now")) {
            addFinding(out, e.file, t.line, "nondeterminism",
                       "'" + t.text +
                           "::now()' reads the wall clock; results "
                           "derived from it are not reproducible");
        }
    }
}

/**
 * unordered-iteration: iterating an unordered container feeds its
 * unspecified bucket order into whatever the loop computes — stats,
 * event order, emitted elements. Sim code must iterate ordered
 * containers (or sort first).
 */
void
ruleUnorderedIteration(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    auto names = templateVarNames(
        toks, {"unordered_map", "unordered_set", "unordered_multimap",
               "unordered_multiset"});
    if (names.empty())
        return;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        // name.begin() / name->begin()
        if (toks[i].isIdent() && names.count(toks[i].text) &&
            i + 3 < toks.size() &&
            (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
            toks[i + 2].is("begin") && toks[i + 3].is("(")) {
            addFinding(out, e.file, toks[i].line,
                       "unordered-iteration",
                       "iteration over unordered container '" +
                           toks[i].text +
                           "': bucket order is unspecified and "
                           "nondeterministic across libraries");
        }
        // for ( ... : name )
        if (!toks[i].is("for") || !toks[i + 1].is("("))
            continue;
        std::size_t close = matchParenFwd(toks, i + 1);
        if (close == static_cast<std::size_t>(-1))
            continue;
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (toks[j].is("("))
                ++depth;
            else if (toks[j].is(")"))
                --depth;
            else if (toks[j].is(":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (!colon)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].isIdent() && names.count(toks[j].text)) {
                addFinding(
                    out, e.file, toks[i].line, "unordered-iteration",
                    "range-for over unordered container '" +
                        toks[j].text +
                        "': bucket order is unspecified and feeds "
                        "the loop's results");
                break;
            }
        }
    }
}

/**
 * direct-output: simulator library code must report through
 * common/logging (levelled, mutex-serialized for the parallel
 * executor); raw stdio interleaves across worker threads and cannot
 * be filtered.
 */
void
ruleDirectOutput(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (isAnyOf(t, {"cout", "cerr", "clog"})) {
            bool qualifiedStd =
                i >= 2 && toks[i - 1].is("::") &&
                toks[i - 2].text == "std";
            bool bare = i == 0 || (!toks[i - 1].is("::") &&
                                   !toks[i - 1].is(".") &&
                                   !toks[i - 1].is("->"));
            if (qualifiedStd || bare) {
                addFinding(out, e.file, t.line, "direct-output",
                           "std::" + t.text +
                               " bypasses common/logging; use "
                               "inform()/warn() or take an "
                               "std::ostream parameter");
            }
            continue;
        }
        if (i + 1 < toks.size() && toks[i + 1].is("(") &&
            isFreeCall(toks, i) && !inClassDeclContext(a, i) &&
            isAnyOf(t, {"printf", "fprintf", "vprintf", "vfprintf",
                        "puts", "putchar", "fputs"})) {
            addFinding(out, e.file, t.line, "direct-output",
                       "'" + t.text +
                           "()' bypasses common/logging (not "
                           "levelled, not serialized across "
                           "executor threads)");
        }
    }
}

/**
 * missing-override: the simulator's polymorphic contracts (Clocked,
 * MemLevel, StatBase, HashTableBase) are how components plug into
 * the timing loop; a signature drift silently unhooks a component.
 * Known interface methods in derived classes must say 'override'.
 */
void
ruleMissingOverride(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t si = 0; si < a.spans.size(); ++si) {
        const Span &cls = a.spans[si];
        if (cls.kind != Span::Kind::Class || !cls.hasBaseList)
            continue;
        for (std::size_t i = cls.open + 1;
             i < cls.close && i + 1 < toks.size(); ++i) {
            if (a.innermost[i] != static_cast<int>(si))
                continue;
            const Token &t = toks[i];
            if (!t.isIdent() ||
                !isAnyOf(t, {"tick", "busy", "nextWakeTick",
                             "access", "dump", "reset"}))
                continue;
            if (!toks[i + 1].is("("))
                continue;
            if (i > 0 && (toks[i - 1].is(".") ||
                          toks[i - 1].is("->") ||
                          toks[i - 1].is("::") ||
                          toks[i - 1].is("=") ||
                          toks[i - 1].is("(") ||
                          toks[i - 1].is(",") ||
                          toks[i - 1].is("return")))
                continue;
            std::size_t close = matchParenFwd(toks, i + 1);
            if (close == static_cast<std::size_t>(-1))
                continue;
            bool hasOverride = false;
            std::size_t j = close + 1;
            for (; j < toks.size(); ++j) {
                if (toks[j].is(";") || toks[j].is("{"))
                    break;
                if (toks[j].is("override") || toks[j].is("final"))
                    hasOverride = true;
            }
            if (!hasOverride) {
                addFinding(out, e.file, t.line, "missing-override",
                           "'" + t.text +
                               "()' matches a simulator interface "
                               "method in a derived class but is "
                               "not marked 'override'");
            }
        }
    }
}

/**
 * raw-stat-counter: a mutable arithmetic variable at namespace/file
 * scope is exactly how ad-hoc statistics escape the StatGroup
 * registry — it survives across runs, breaks the executor's per-run
 * isolation and memoization, and never shows up in stats dumps.
 */
void
ruleRawStatCounter(const Engine &e, FindingSink &out)
{
    static const std::set<std::string> typeSet = {
        "int",      "unsigned", "long",     "short",    "float",
        "double",   "bool",     "char",     "size_t",   "int8_t",
        "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "intptr_t", "uintptr_t", "Tick",
        "Addr",     "NodeId",   "EdgeId",   "Weight"};

    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent() || !typeSet.count(toks[i].text))
            continue;
        if (a.parenDepth[i] != 0)
            continue;
        int span = a.innermost[i];
        if (span >= 0 &&
            a.spans[span].kind != Span::Kind::Namespace)
            continue;
        // Reject if the declaration head (back to the previous
        // ';' / '{' / '}') contains a disqualifier.
        bool disqualified = false;
        for (std::size_t j = i; j-- > 0;) {
            if (isAnyOf(toks[j], {";", "{", "}"}))
                break;
            if (isAnyOf(toks[j],
                        {"const", "constexpr", "constinit", "extern",
                         "using", "typedef", "template", "friend",
                         "operator", "thread_local", "enum",
                         "class", "struct"})) {
                disqualified = true;
                break;
            }
        }
        if (disqualified)
            continue;
        // Skip over the rest of the type tokens to the declarator.
        std::size_t j = i;
        while (j < toks.size() && toks[j].isIdent() &&
               typeSet.count(toks[j].text))
            ++j;
        while (j < toks.size() && isAnyOf(toks[j], {"*", "&"}))
            ++j;
        if (j >= toks.size() || !toks[j].isIdent())
            continue;
        if (isAnyOf(toks[j], {"const", "constexpr"}))
            continue;
        std::size_t after = j + 1;
        if (after >= toks.size())
            continue;
        if (toks[after].is("=") || toks[after].is(";") ||
            toks[after].is("{") || toks[after].is("[")) {
            addFinding(out, e.file, toks[j].line, "raw-stat-counter",
                       "mutable namespace-scope counter '" +
                           toks[j].text +
                           "' bypasses the Stat registry and "
                           "survives across runs (breaks per-run "
                           "isolation); use a stats::Scalar owned "
                           "by a component");
            i = after;
        }
    }
}

/**
 * stat-registered-after-start: a stat constructed as a function
 * local registers with its StatGroup only when that function runs —
 * typically after the simulation started — so it misses dumps and
 * resets that already happened and silently unregisters again on
 * scope exit. Stats must be members, constructed while the component
 * tree is built (member declarations and mem-init lists don't match
 * the local-declaration shape this rule looks for).
 */
void
ruleStatRegisteredAfterStart(const Engine &e, FindingSink &out)
{
    static const std::set<std::string> statTypes = {
        "Scalar", "Formula", "Distribution", "Timeseries"};

    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].isIdent() || !statTypes.count(toks[i].text))
            continue;
        // Local *declaration* shape: `Scalar name(...)`. Temporaries
        // (`Scalar(...)`), members (`Scalar name;`), template args
        // (`make_unique<Timeseries>(...)`) and parameters all differ.
        if (!toks[i + 1].isIdent() || !toks[i + 2].is("("))
            continue;
        // stats:: / scusim::stats:: qualification is fine; any other
        // namespace's Scalar is not ours.
        if (i >= 2 && toks[i - 1].is("::") &&
            toks[i - 2].text != "stats")
            continue;
        if (a.parenDepth[i] != 0)
            continue;
        if (a.enclosingFunction(i) < 0)
            continue;
        addFinding(out, e.file, toks[i].line,
                   "stat-registered-after-start",
                   "stat '" + toks[i + 1].text +
                       "' constructed inside a function body "
                       "registers with its StatGroup after the "
                       "simulation may have started (and "
                       "unregisters at scope exit); make it a "
                       "member built with the component tree");
    }
}

/**
 * swallowed-sim-error: a `catch (...)` handler also catches SimError,
 * the typed failure the supervision stack depends on — a handler that
 * neither rethrows nor mentions the failure taxonomy turns a
 * classified panic/deadlock/timeout into a silently "successful" run.
 */
void
ruleSwallowedSimError(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    for (std::size_t i = 0; i + 5 < toks.size(); ++i) {
        // catch ( . . . )  — '...' lexes as three '.' tokens.
        if (!toks[i].is("catch") || !toks[i + 1].is("(") ||
            !toks[i + 2].is(".") || !toks[i + 3].is(".") ||
            !toks[i + 4].is(".") || !toks[i + 5].is(")"))
            continue;
        std::size_t open = i + 6;
        if (open >= toks.size() || !toks[open].is("{"))
            continue;
        // Scan the handler body for evidence the failure survives:
        // a rethrow, or the SimError / FailureKind types being
        // consulted to record what happened.
        int depth = 0;
        bool handled = false;
        std::size_t j = open;
        for (; j < toks.size(); ++j) {
            if (toks[j].is("{"))
                ++depth;
            else if (toks[j].is("}") && --depth == 0)
                break;
            else if (toks[j].is("throw") || toks[j].is("SimError") ||
                     toks[j].is("FailureKind"))
                handled = true;
        }
        if (!handled) {
            addFinding(out, e.file, toks[i].line,
                       "swallowed-sim-error",
                       "catch (...) swallows SimError without "
                       "recording a FailureKind; rethrow, or catch "
                       "SimError first and classify the failure");
        }
        i = j;
    }
}

/**
 * tick-every-cycle: a Clocked component's nextWakeTick() is the
 * event-driven scheduler's only lever — a body that unconditionally
 * answers "the very next tick" (no branch, never tickNever, returns
 * an expression built with '+') degrades the whole simulation back
 * to per-tick polling of that component. Wakes must be derived from
 * real component state: a cached earliest-wake tick, or tickNever
 * when idle.
 */
void
ruleTickEveryCycle(const Engine &e, FindingSink &out)
{
    const auto &toks = e.file.tokens;
    const Structure &a = e.st;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || toks[i].text != "nextWakeTick" ||
            !toks[i + 1].is("("))
            continue;
        // Definition context only: inline in a class that derives
        // from something (the Clocked pattern), or an out-of-line
        // qualified member (`Engine::nextWakeTick`). Calls are
        // preceded by '.' / '->' and never grow a body anyway.
        bool inDerivedClass = false;
        const int si = a.innermost[i];
        if (si >= 0 &&
            a.spans[si].kind == Span::Kind::Class &&
            a.spans[si].hasBaseList)
            inDerivedClass = true;
        const bool qualified =
            i >= 2 && toks[i - 1].is("::") && toks[i - 2].isIdent();
        if (!inDerivedClass && !qualified)
            continue;
        const std::size_t close = matchParenFwd(toks, i + 1);
        if (close == static_cast<std::size_t>(-1))
            continue;
        // Skip trailing qualifiers to the body; a ';' first means a
        // declaration (or a call expression) — nothing to inspect.
        std::size_t open = close + 1;
        while (open < toks.size() &&
               isAnyOf(toks[open],
                       {"const", "override", "final", "noexcept"}))
            ++open;
        if (open >= toks.size() || !toks[open].is("{"))
            continue;
        // The body unconditionally schedules the next tick when it
        // never branches, never mentions tickNever, and its return
        // value is additive ("now + 1" and friends).
        int depth = 0;
        bool conditional = false;
        bool additiveReturn = false;
        bool inReturn = false;
        std::size_t j = open;
        for (; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.is("{"))
                ++depth;
            else if (t.is("}") && --depth == 0)
                break;
            else if (isAnyOf(t, {"if", "switch", "while", "for"}) ||
                     t.is("?") || t.is("tickNever"))
                conditional = true;
            else if (t.is("return"))
                inReturn = true;
            else if (t.is(";"))
                inReturn = false;
            else if (inReturn &&
                     t.text.find('+') != std::string::npos)
                additiveReturn = true;
        }
        if (!conditional && additiveReturn) {
            addFinding(out, e.file, toks[i].line, "tick-every-cycle",
                       "nextWakeTick() unconditionally returns the "
                       "next tick, degrading the event-driven "
                       "scheduler to per-tick polling of this "
                       "component; derive the wake from component "
                       "state (cache the earliest wake, return "
                       "tickNever when idle)");
        }
        i = j;
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleRegistry()
{
    static const std::vector<RuleInfo> registry = {
        {"fifo-unguarded-push",
         "BoundedFifo::push() not dominated by a full()/space() "
         "back-pressure consult on the same fifo (flow-sensitive)",
         false},
        {"wake-not-armed",
         "Clocked component enqueues pending work outside tick() on "
         "a path where notifyWake() does not post-dominate the push "
         "(event-driven scheduler may never service it)",
         false},
        {"device-zero-hardcode",
         "per-device resource indexed with literal 0 inside code "
         "that receives a DeviceId (shard reads device 0's state)",
         false},
        {"icn-credit-leak",
         "queue front()/top() not post-dominated by pop() in a "
         "function that pops: element stays queued, its flow-control "
         "credit is never returned",
         false},
        {"nondeterminism",
         "wall-clock / OS-entropy source in simulation code "
         "(random_device, rand, time, *_clock::now)",
         false},
        {"unordered-iteration",
         "iteration over an unordered container (bucket order is "
         "unspecified and feeds results)",
         false},
        {"direct-output",
         "raw stdout/stderr (printf, std::cout, ...) bypassing "
         "common/logging in simulator library code",
         true},
        {"missing-override",
         "simulator interface method (tick/busy/access/dump/...) "
         "redeclared in a derived class without 'override'",
         false},
        {"raw-stat-counter",
         "mutable namespace-scope arithmetic variable in library "
         "code (ad-hoc stat escaping the Stat registry)",
         true},
        {"swallowed-sim-error",
         "catch (...) handler that neither rethrows nor records a "
         "FailureKind (silently discards classified SimError "
         "failures)",
         true},
        {"stat-registered-after-start",
         "stats::Scalar/Formula/Distribution/Timeseries constructed "
         "as a function local (registers with its StatGroup after "
         "the simulation started, unregisters at scope exit)",
         true},
        {"tick-every-cycle",
         "nextWakeTick() body that unconditionally returns the next "
         "tick (no branch, no tickNever) — degrades the event-driven "
         "scheduler to per-tick polling of the component",
         false},
        {"unused-suppression",
         "simlint: allow(...) directive that suppresses no finding "
         "(stale after a fix or a rule improvement; remove it)",
         false},
    };
    return registry;
}

RuleResults
runRules(const LexedFile &file, bool treatAsSrc,
         const LexedFile *companion)
{
    Engine e(file, companion);
    bool inSrc = treatAsSrc || file.path.rfind("src/", 0) == 0;

    std::vector<Finding> found;
    ruleFifoUnguardedPush(e, found);
    ruleWakeNotArmed(e, found);
    ruleDeviceZeroHardcode(e, found);
    ruleIcnCreditLeak(e, found);
    ruleNondeterminism(e, found);
    ruleUnorderedIteration(e, found);
    ruleMissingOverride(e, found);
    ruleTickEveryCycle(e, found);
    if (inSrc) {
        ruleDirectOutput(e, found);
        ruleRawStatCounter(e, found);
        ruleSwallowedSimError(e, found);
        ruleStatRegisteredAfterStart(e, found);
    }

    RuleResults res;
    std::vector<bool> allowUsed(file.directives.size(), false);
    for (auto &fi : found) {
        bool suppressed = false;
        for (std::size_t d = 0; d < file.directives.size(); ++d) {
            const Directive &dir = file.directives[d];
            if (dir.kind != Directive::Kind::Allow ||
                dir.rule != fi.rule)
                continue;
            if (dir.line == fi.line || dir.line == fi.line - 1) {
                allowUsed[d] = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            res.findings.push_back(std::move(fi));
    }
    for (std::size_t d = 0; d < file.directives.size(); ++d) {
        const Directive &dir = file.directives[d];
        if (dir.kind == Directive::Kind::Allow && !allowUsed[d])
            res.unusedAllows.push_back(dir);
    }

    std::sort(res.findings.begin(), res.findings.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.line != y.line)
                      return x.line < y.line;
                  return x.rule < y.rule;
              });
    return res;
}

} // namespace simlint
