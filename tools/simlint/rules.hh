/**
 * @file
 * simlint rule registry. Each rule encodes one simulator-modeling
 * hazard. The v1 rules are heuristic token-pattern matchers; the
 * flow-sensitive rules (fifo-unguarded-push, wake-not-armed,
 * device-zero-hardcode, icn-credit-leak) run on per-function control
 * flow graphs with a must-dataflow engine (see cfg.hh, dataflow.hh).
 * Any finding can be suppressed with an `allow(<rule>)` control
 * comment on the finding's anchor line or the line directly above
 * it; an allow() that suppresses nothing is itself reported as
 * `unused-suppression` so stale suppressions cannot linger.
 */

#ifndef SIMLINT_RULES_HH
#define SIMLINT_RULES_HH

#include <string>
#include <vector>

#include "lexer.hh"

namespace simlint
{

/** One diagnostic. */
struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Static description of a rule, for --list-rules and SARIF. */
struct RuleInfo
{
    std::string name;
    std::string description;
    bool srcOnly; ///< applies only under src/ (simulator library)
};

/** All registered rules. */
const std::vector<RuleInfo> &ruleRegistry();

/** Everything one analysis pass produced for one file. */
struct RuleResults
{
    /** Findings surviving allow() suppression, (line, rule) sorted. */
    std::vector<Finding> findings;
    /** Allow directives that suppressed no finding (stale). */
    std::vector<Directive> unusedAllows;
};

/**
 * Run every applicable rule over @p file. @p treatAsSrc forces the
 * src/-scoped rules on regardless of path (fixture self-tests).
 * @p companion, when given, is the lexed paired header of a .cc
 * file; its declarations seed the symbol table so member fifos
 * declared in the header are visible to the flow rules.
 */
RuleResults runRules(const LexedFile &file, bool treatAsSrc = false,
                     const LexedFile *companion = nullptr);

} // namespace simlint

#endif // SIMLINT_RULES_HH
