/**
 * @file
 * simlint rule registry. Each rule encodes one simulator-modeling
 * hazard; all of them are heuristic token-pattern matchers over the
 * lexed file (see lexer.hh). Any finding can be suppressed with a
 * `// simlint: allow(<rule>)` comment on the offending line or the
 * line directly above it.
 */

#ifndef SIMLINT_RULES_HH
#define SIMLINT_RULES_HH

#include <string>
#include <vector>

#include "lexer.hh"

namespace simlint
{

/** One diagnostic. */
struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Static description of a rule, for --list-rules. */
struct RuleInfo
{
    std::string name;
    std::string description;
    bool srcOnly; ///< applies only under src/ (simulator library)
};

/** All registered rules. */
const std::vector<RuleInfo> &ruleRegistry();

/**
 * Run every applicable rule over @p file. @p treatAsSrc forces the
 * src/-scoped rules on regardless of path (fixture self-tests).
 * Findings suppressed by allow() directives are dropped here.
 */
std::vector<Finding> runRules(const LexedFile &file,
                              bool treatAsSrc = false);

} // namespace simlint

#endif // SIMLINT_RULES_HH
