/**
 * @file
 * simlint — simulator-aware static analysis for scusim.
 *
 * Scans C++ sources for modeling hazards a generic linter cannot
 * know about. v2 runs per-function control-flow graphs with a
 * must-dataflow engine under the flow-sensitive rules (unguarded
 * fifo pushes, missing scheduler wakes, hardcoded device indices,
 * leaked interconnect credits) and token heuristics for the rest.
 *
 * Usage:
 *   simlint [options] [PATH...]        lint PATHs (default: src
 *                                      bench examples) under --root
 *   simlint --self-test DIR            run the fixture corpus: every
 *                                      expect() must fire, nothing
 *                                      else may
 *   simlint --list-rules               describe all rules
 *
 * Options:
 *   --root DIR           tree root (default: cwd); paths in
 *                        diagnostics are root-relative
 *   --format text|json|sarif
 *                        diagnostic format (default: text; sarif is
 *                        SARIF 2.1.0 for code-scanning upload)
 *   --baseline FILE      known-findings baseline: findings covered
 *                        by it are reported as warnings and do not
 *                        fail the run; only *new* findings do
 *   --write-baseline FILE
 *                        write the current findings as a baseline
 *   --jobs N             lint N files in parallel (default:
 *                        $SCUSIM_JOBS, else hardware concurrency);
 *                        finding order is deterministic regardless
 *
 * Exit status: 0 clean (or all findings baselined), 1 new findings
 * (or self-test mismatch), 2 usage or I/O error.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lexer.hh"
#include "rules.hh"

namespace fs = std::filesystem;
using namespace simlint;

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

/** Read a whole file; returns false on I/O error. */
bool
slurp(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Collect source files under @p path (file or directory). The
 *  simlint fixture corpus is deliberately full of findings and is
 *  excluded from tree lints (it is covered by --self-test). */
bool
collect(const fs::path &path, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(path);
        return true;
    }
    if (!fs::is_directory(path, ec)) {
        std::fprintf(stderr, "simlint: no such file or directory: "
                             "%s\n",
                     path.string().c_str());
        return false;
    }
    for (fs::recursive_directory_iterator it(path, ec), end;
         it != end; it.increment(ec)) {
        if (ec) {
            std::fprintf(stderr, "simlint: error walking %s: %s\n",
                         path.string().c_str(),
                         ec.message().c_str());
            return false;
        }
        if (!it->is_regular_file() || !isSourceFile(it->path()))
            continue;
        const std::string g = it->path().generic_string();
        if (g.find("simlint/fixtures") != std::string::npos)
            continue;
        out.push_back(it->path());
    }
    return true;
}

std::string
relativeTo(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::proximate(p, root, ec);
    std::string s = (ec ? p : rel).generic_string();
    return s;
}

/**
 * The paired header of a .cc/.cpp file (same stem, .hh/.hpp, same
 * directory), if it exists. Its declarations seed the symbol table
 * so member fifos declared in the header are visible to the flow
 * rules while linting the implementation file.
 */
fs::path
companionHeader(const fs::path &p)
{
    const std::string ext = p.extension().string();
    if (ext != ".cc" && ext != ".cpp")
        return {};
    for (const char *hext : {".hh", ".hpp"}) {
        fs::path h = p;
        h.replace_extension(hext);
        std::error_code ec;
        if (fs::is_regular_file(h, ec))
            return h;
    }
    return {};
}

/** Turn stale allow() directives into reportable findings. */
void
appendUnusedSuppressions(const LexedFile &lf, const RuleResults &rr,
                         std::vector<Finding> &out)
{
    for (const Directive &d : rr.unusedAllows) {
        out.push_back(Finding{
            lf.path, d.line, "unused-suppression",
            "allow(" + d.rule +
                ") suppresses nothing on this or the next line; "
                "the hazard was fixed or the rule got more "
                "precise — remove the comment"});
    }
}

int
parseJobs(const char *arg)
{
    int jobs = 0;
    if (arg) {
        jobs = std::atoi(arg);
    } else if (const char *env = std::getenv("SCUSIM_JOBS")) {
        jobs = std::atoi(env);
    }
    if (jobs <= 0)
        jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0)
        jobs = 1;
    return jobs;
}

// ---------------------------------------------------------------
// Baselines: `count rule path` per line, '#' comments. A finding
// (rule, path) pair is "baselined" while the recorded count lasts;
// anything beyond it is new and fails the run.
// ---------------------------------------------------------------

bool
loadBaseline(const fs::path &file,
             std::map<std::pair<std::string, std::string>, int> &out)
{
    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "simlint: cannot read baseline %s\n",
                     file.string().c_str());
        return false;
    }
    std::string lineStr;
    while (std::getline(in, lineStr)) {
        std::istringstream ls(lineStr);
        int count = 0;
        std::string rule, path;
        if (!(ls >> count))
            continue; // blank or '#' comment line
        if (!(ls >> rule >> path))
            continue;
        out[{rule, path}] += count;
    }
    return true;
}

bool
writeBaseline(const fs::path &file,
              const std::vector<Finding> &findings)
{
    std::map<std::pair<std::string, std::string>, int> counts;
    for (const auto &f : findings)
        ++counts[{f.rule, f.path}];
    std::ofstream out(file, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "simlint: cannot write baseline %s\n",
                     file.string().c_str());
        return false;
    }
    out << "# simlint baseline: known findings that do not fail the "
           "lint.\n"
        << "# Format: <count> <rule> <path>. Regenerate with\n"
        << "#   simlint --write-baseline simlint.baseline [PATH...]\n"
        << "# The gate fails only on findings NOT covered here, so\n"
        << "# the count can only ratchet down.\n";
    for (const auto &[key, n] : counts)
        out << n << ' ' << key.first << ' ' << key.second << '\n';
    return true;
}

// ---------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printText(const std::vector<Finding> &findings,
          const std::vector<bool> &baselined)
{
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::fprintf(stderr, "%s:%d: %s[%s] %s\n", f.path.c_str(),
                     f.line, baselined[i] ? "(baselined) " : "",
                     f.rule.c_str(), f.message.c_str());
    }
}

void
printJson(const std::vector<Finding> &findings,
          const std::vector<bool> &baselined)
{
    std::printf("[\n");
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::printf("  {\"path\": \"%s\", \"line\": %d, \"rule\": "
                    "\"%s\", \"baselined\": %s, \"message\": "
                    "\"%s\"}%s\n",
                    jsonEscape(f.path).c_str(), f.line,
                    jsonEscape(f.rule).c_str(),
                    baselined[i] ? "true" : "false",
                    jsonEscape(f.message).c_str(),
                    i + 1 < findings.size() ? "," : "");
    }
    std::printf("]\n");
}

void
printSarif(const std::vector<Finding> &findings,
           const std::vector<bool> &baselined)
{
    std::printf(
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\n"
        "      \"name\": \"simlint\",\n"
        "      \"informationUri\": "
        "\"https://example.invalid/scusim/tools/simlint\",\n"
        "      \"rules\": [\n");
    const auto &reg = ruleRegistry();
    for (std::size_t i = 0; i < reg.size(); ++i) {
        std::printf("        {\"id\": \"%s\", \"shortDescription\": "
                    "{\"text\": \"%s\"}}%s\n",
                    jsonEscape(reg[i].name).c_str(),
                    jsonEscape(reg[i].description).c_str(),
                    i + 1 < reg.size() ? "," : "");
    }
    std::printf("      ]\n"
                "    }},\n"
                "    \"results\": [\n");
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::printf(
            "      {\"ruleId\": \"%s\", \"level\": \"%s\", "
            "\"message\": {\"text\": \"%s\"}, \"locations\": "
            "[{\"physicalLocation\": {\"artifactLocation\": "
            "{\"uri\": \"%s\"}, \"region\": {\"startLine\": "
            "%d}}}]}%s\n",
            jsonEscape(f.rule).c_str(),
            baselined[i] ? "warning" : "error",
            jsonEscape(f.message).c_str(),
            jsonEscape(f.path).c_str(), f.line,
            i + 1 < findings.size() ? "," : "");
    }
    std::printf("    ]\n"
                "  }]\n"
                "}\n");
}

// ---------------------------------------------------------------
// Tree lint
// ---------------------------------------------------------------

struct Options
{
    fs::path root;
    std::vector<std::string> paths;
    std::string format = "text";
    std::string baselineFile;
    std::string writeBaselineFile;
    int jobs = 1;
};

int
lintTree(const Options &opt)
{
    std::vector<fs::path> files;
    for (const auto &p : opt.paths) {
        if (!collect(opt.root / p, files))
            return 2;
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    // One result slot per file, filled by a worker pool and merged
    // in file order, so the output is deterministic for any --jobs.
    std::vector<std::vector<Finding>> slots(files.size());
    std::vector<std::string> errors(files.size());
    std::atomic<std::size_t> next{0};

    auto work = [&]() {
        for (;;) {
            std::size_t idx = next.fetch_add(1);
            if (idx >= files.size())
                return;
            const fs::path &file = files[idx];
            std::string src;
            if (!slurp(file, src)) {
                errors[idx] =
                    "simlint: cannot read " + file.string();
                continue;
            }
            LexedFile lf = lex(relativeTo(file, opt.root), src);

            LexedFile companion;
            const LexedFile *companionPtr = nullptr;
            fs::path hdr = companionHeader(file);
            if (!hdr.empty()) {
                std::string hsrc;
                if (slurp(hdr, hsrc)) {
                    companion =
                        lex(relativeTo(hdr, opt.root), hsrc);
                    companionPtr = &companion;
                }
            }

            RuleResults rr =
                runRules(lf, /*treatAsSrc=*/false, companionPtr);
            slots[idx] = std::move(rr.findings);
            appendUnusedSuppressions(lf, rr, slots[idx]);
        }
    };

    const int jobs = std::max(
        1, std::min<int>(opt.jobs,
                         static_cast<int>(files.size())));
    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        for (int t = 0; t < jobs; ++t)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    for (const auto &err : errors) {
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
    }

    std::vector<Finding> all;
    for (auto &slot : slots)
        all.insert(all.end(), slot.begin(), slot.end());
    std::sort(all.begin(), all.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.path != y.path)
                      return x.path < y.path;
                  if (x.line != y.line)
                      return x.line < y.line;
                  return x.rule < y.rule;
              });

    if (!opt.writeBaselineFile.empty()) {
        if (!writeBaseline(opt.root / opt.writeBaselineFile, all))
            return 2;
        std::printf("simlint: baseline with %zu finding%s written "
                    "to %s\n",
                    all.size(), all.size() == 1 ? "" : "s",
                    opt.writeBaselineFile.c_str());
        return 0;
    }

    std::map<std::pair<std::string, std::string>, int> baseline;
    if (!opt.baselineFile.empty() &&
        !loadBaseline(opt.root / opt.baselineFile, baseline))
        return 2;

    std::vector<bool> baselined(all.size(), false);
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        auto it = baseline.find({all[i].rule, all[i].path});
        if (it != baseline.end() && it->second > 0) {
            --it->second;
            baselined[i] = true;
        } else {
            ++fresh;
        }
    }

    if (opt.format == "json")
        printJson(all, baselined);
    else if (opt.format == "sarif")
        printSarif(all, baselined);
    else
        printText(all, baselined);

    if (fresh) {
        std::fprintf(stderr,
                     "simlint: %zu new finding%s (%zu baselined) in "
                     "%zu files scanned\n",
                     fresh, fresh == 1 ? "" : "s",
                     all.size() - fresh, files.size());
        return 1;
    }
    if (opt.format == "text") {
        if (!all.empty()) {
            std::fprintf(stderr,
                         "simlint: %zu baselined finding%s, none "
                         "new, in %zu files scanned\n",
                         all.size(), all.size() == 1 ? "" : "s",
                         files.size());
        } else {
            std::printf("simlint: %zu files clean\n", files.size());
        }
    }
    return 0;
}

/**
 * Self-test over the fixture corpus: the (line, rule) multiset of
 * findings in every fixture file must match its expect() directives
 * exactly — missing *and* unexpected findings fail. Unused allow()
 * directives surface as unused-suppression findings here too, so
 * fixtures can pin the meta-rule's behavior with expect().
 */
int
selfTest(const fs::path &dir)
{
    std::vector<fs::path> files;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end; it.increment(ec)) {
        if (ec) {
            std::fprintf(stderr, "simlint: error walking %s: %s\n",
                         dir.string().c_str(), ec.message().c_str());
            return 2;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path());
    }
    if (files.empty()) {
        std::fprintf(stderr, "simlint: no fixtures under %s\n",
                     dir.string().c_str());
        return 2;
    }
    std::sort(files.begin(), files.end());

    int failures = 0;
    std::size_t expectations = 0;
    for (const auto &file : files) {
        std::string src;
        if (!slurp(file, src)) {
            std::fprintf(stderr, "simlint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        LexedFile lf = lex(relativeTo(file, dir), src);
        RuleResults rr = runRules(lf, /*treatAsSrc=*/true);
        std::vector<Finding> found = std::move(rr.findings);
        appendUnusedSuppressions(lf, rr, found);

        std::map<std::pair<int, std::string>, int> want, got;
        for (const auto &d : lf.directives) {
            if (d.kind == Directive::Kind::Expect)
                ++want[{d.line, d.rule}];
        }
        for (const auto &f : found)
            ++got[{f.line, f.rule}];
        expectations += found.size();

        for (const auto &[key, n] : want) {
            int have = got.count(key) ? got[key] : 0;
            if (have < n) {
                std::fprintf(stderr,
                             "simlint self-test: %s:%d: expected "
                             "[%s] to fire (%dx), fired %dx\n",
                             lf.path.c_str(), key.first,
                             key.second.c_str(), n, have);
                ++failures;
            }
        }
        for (const auto &[key, n] : got) {
            int wanted = want.count(key) ? want[key] : 0;
            if (n > wanted) {
                std::fprintf(stderr,
                             "simlint self-test: %s:%d: unexpected "
                             "[%s] finding (%dx, expected %dx)\n",
                             lf.path.c_str(), key.first,
                             key.second.c_str(), n, wanted);
                ++failures;
            }
        }
    }
    if (failures) {
        std::fprintf(stderr, "simlint self-test: %d mismatch%s\n",
                     failures, failures == 1 ? "" : "es");
        return 1;
    }
    std::printf("simlint self-test: %zu fixtures, %zu findings, all "
                "as expected\n",
                files.size(), expectations);
    return 0;
}

void
listRules()
{
    for (const auto &r : ruleRegistry()) {
        std::printf("%-28s %s%s\n", r.name.c_str(),
                    r.description.c_str(),
                    r.srcOnly ? " [src/ only]" : "");
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: simlint [--root DIR] [--format text|json|sarif]\n"
        "               [--baseline FILE] [--write-baseline FILE]\n"
        "               [--jobs N] [PATH...]\n"
        "       simlint --self-test DIR\n"
        "       simlint --list-rules\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    opt.root = fs::current_path();
    opt.jobs = parseJobs(nullptr);
    std::string selfTestDir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage();
            opt.root = argv[i];
        } else if (arg == "--self-test") {
            if (++i >= argc)
                return usage();
            selfTestDir = argv[i];
        } else if (arg == "--format") {
            if (++i >= argc)
                return usage();
            opt.format = argv[i];
            if (opt.format != "text" && opt.format != "json" &&
                opt.format != "sarif")
                return usage();
        } else if (arg == "--baseline") {
            if (++i >= argc)
                return usage();
            opt.baselineFile = argv[i];
        } else if (arg == "--write-baseline") {
            if (++i >= argc)
                return usage();
            opt.writeBaselineFile = argv[i];
        } else if (arg == "--jobs") {
            if (++i >= argc)
                return usage();
            opt.jobs = parseJobs(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            opt.paths.push_back(arg);
        }
    }

    if (!selfTestDir.empty())
        return selfTest(selfTestDir);

    if (opt.paths.empty())
        opt.paths = {"src", "bench", "examples"};
    return lintTree(opt);
}
