/**
 * @file
 * simlint — simulator-aware static analysis for scusim.
 *
 * Scans C++ sources for modeling hazards a generic linter cannot
 * know about: unguarded BoundedFifo pushes, wall-clock/entropy
 * nondeterminism, unordered-container iteration, raw stdio in
 * library code, missing 'override' on simulator interface methods,
 * and ad-hoc namespace-scope counters escaping the Stat registry.
 *
 * Usage:
 *   simlint [--root DIR] [PATH...]     lint PATHs (default: src
 *                                      bench examples) under DIR
 *   simlint --self-test DIR            run the fixture corpus: every
 *                                      expect() must fire, nothing
 *                                      else may
 *   simlint --list-rules               describe all rules
 *
 * Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage
 * or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hh"
#include "rules.hh"

namespace fs = std::filesystem;
using namespace simlint;

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

/** Read a whole file; returns false on I/O error. */
bool
slurp(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Collect source files under @p path (file or directory). */
bool
collect(const fs::path &path, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(path);
        return true;
    }
    if (!fs::is_directory(path, ec)) {
        std::fprintf(stderr, "simlint: no such file or directory: "
                             "%s\n",
                     path.string().c_str());
        return false;
    }
    for (fs::recursive_directory_iterator it(path, ec), end;
         it != end; it.increment(ec)) {
        if (ec) {
            std::fprintf(stderr, "simlint: error walking %s: %s\n",
                         path.string().c_str(),
                         ec.message().c_str());
            return false;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            out.push_back(it->path());
    }
    return true;
}

std::string
relativeTo(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::proximate(p, root, ec);
    std::string s = (ec ? p : rel).generic_string();
    return s;
}

void
printFindings(const std::vector<Finding> &findings)
{
    for (const auto &f : findings) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
    }
}

int
lintTree(const fs::path &root, const std::vector<std::string> &paths)
{
    std::vector<fs::path> files;
    for (const auto &p : paths) {
        if (!collect(root / p, files))
            return 2;
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> all;
    for (const auto &file : files) {
        std::string src;
        if (!slurp(file, src)) {
            std::fprintf(stderr, "simlint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        LexedFile lf = lex(relativeTo(file, root), src);
        auto found = runRules(lf);
        all.insert(all.end(), found.begin(), found.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.path != y.path)
                      return x.path < y.path;
                  if (x.line != y.line)
                      return x.line < y.line;
                  return x.rule < y.rule;
              });
    printFindings(all);
    if (!all.empty()) {
        std::fprintf(stderr, "simlint: %zu finding%s in %zu files "
                             "scanned\n",
                     all.size(), all.size() == 1 ? "" : "s",
                     files.size());
        return 1;
    }
    std::printf("simlint: %zu files clean\n", files.size());
    return 0;
}

/**
 * Self-test over the fixture corpus: the (line, rule) multiset of
 * findings in every fixture file must match its expect() directives
 * exactly — missing *and* unexpected findings fail.
 */
int
selfTest(const fs::path &dir)
{
    std::vector<fs::path> files;
    if (!collect(dir, files))
        return 2;
    if (files.empty()) {
        std::fprintf(stderr, "simlint: no fixtures under %s\n",
                     dir.string().c_str());
        return 2;
    }
    std::sort(files.begin(), files.end());

    int failures = 0;
    std::size_t expectations = 0;
    for (const auto &file : files) {
        std::string src;
        if (!slurp(file, src)) {
            std::fprintf(stderr, "simlint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        LexedFile lf = lex(relativeTo(file, dir), src);
        auto found = runRules(lf, /*treatAsSrc=*/true);

        std::map<std::pair<int, std::string>, int> want, got;
        for (const auto &d : lf.directives) {
            if (d.kind == Directive::Kind::Expect)
                ++want[{d.line, d.rule}];
        }
        for (const auto &f : found)
            ++got[{f.line, f.rule}];
        expectations += found.size();

        for (const auto &[key, n] : want) {
            int have = got.count(key) ? got[key] : 0;
            if (have < n) {
                std::fprintf(stderr,
                             "simlint self-test: %s:%d: expected "
                             "[%s] to fire (%dx), fired %dx\n",
                             lf.path.c_str(), key.first,
                             key.second.c_str(), n, have);
                ++failures;
            }
        }
        for (const auto &[key, n] : got) {
            int wanted = want.count(key) ? want[key] : 0;
            if (n > wanted) {
                std::fprintf(stderr,
                             "simlint self-test: %s:%d: unexpected "
                             "[%s] finding (%dx, expected %dx)\n",
                             lf.path.c_str(), key.first,
                             key.second.c_str(), n, wanted);
                ++failures;
            }
        }
    }
    if (failures) {
        std::fprintf(stderr, "simlint self-test: %d mismatch%s\n",
                     failures, failures == 1 ? "" : "es");
        return 1;
    }
    std::printf("simlint self-test: %zu fixtures, %zu findings, all "
                "as expected\n",
                files.size(), expectations);
    return 0;
}

void
listRules()
{
    for (const auto &r : ruleRegistry()) {
        std::printf("%-22s %s%s\n", r.name.c_str(),
                    r.description.c_str(),
                    r.srcOnly ? " [src/ only]" : "");
    }
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: simlint [--root DIR] [PATH...]\n"
                 "       simlint --self-test DIR\n"
                 "       simlint --list-rules\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::vector<std::string> paths;
    std::string selfTestDir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage();
            root = argv[i];
        } else if (arg == "--self-test") {
            if (++i >= argc)
                return usage();
            selfTestDir = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }

    if (!selfTestDir.empty())
        return selfTest(selfTestDir);

    if (paths.empty())
        paths = {"src", "bench", "examples"};
    return lintTree(root, paths);
}
