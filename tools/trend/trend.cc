/**
 * @file
 * trend: artifact trend / consistency tool (no external deps).
 *
 * Reads a bench result CSV (the writeRunsCsv format: one header row,
 * JSON-style quoted strings) and prints a compact per-run trend table
 * plus a failure summary built from the CSV's own `ok`, `failureKind`
 * and `attempts` columns.
 *
 * With --check it also cross-validates the CSV against the bench's
 * `<artifact>.failures.json` report: every failed CSV row must appear
 * there with the same failureKind and attempts, and vice versa — the
 * two artifacts are written by different code paths, so agreement is
 * a real invariant, not a tautology.
 *
 * With --bench it instead reads a perf_core self-timing artifact
 * (BENCH_core.json) and prints the per-workload scheduler speedup
 * table, so simulator-performance trends are greppable next to the
 * figure artifacts.
 *
 * With --by-device it prints the sharded view instead: one aggregate
 * row per run plus one indented row per device slice (from the
 * dev<k>_* CSV columns multi-device runs emit), so per-device SCU
 * filtering skew and link traffic are greppable per commit.
 *
 *   trend <artifact.csv> [<artifact.failures.json>]
 *   trend --check <artifact.csv> [<artifact.failures.json>]
 *   trend --by-device <artifact.csv>
 *   trend --bench <BENCH_core.json>
 *   trend --self-test
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct Row
{
    std::map<std::string, std::string> cols;

    const std::string &
    get(const std::string &name) const
    {
        static const std::string empty;
        auto it = cols.find(name);
        return it == cols.end() ? empty : it->second;
    }
};

/** Unquote a JSON-style string field; bare fields pass through. */
std::string
unquote(const std::string &s)
{
    if (s.size() < 2 || s.front() != '"' || s.back() != '"')
        return s;
    std::string out;
    out.reserve(s.size() - 2);
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        char c = s[i];
        if (c == '\\' && i + 2 < s.size()) {
            char n = s[++i];
            switch (n) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              default: out.push_back(n); break;
            }
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/** Split one CSV line, honoring the JSON-style quoting of fields. */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool inQuote = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (inQuote) {
            cur.push_back(c);
            if (c == '\\' && i + 1 < line.size())
                cur.push_back(line[++i]);
            else if (c == '"')
                inQuote = false;
        } else if (c == '"') {
            cur.push_back(c);
            inQuote = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    fields.push_back(cur);
    return fields;
}

/** Parse the whole CSV document into header-keyed rows. */
std::vector<Row>
parseCsv(std::istream &is, std::string &err)
{
    std::vector<Row> rows;
    std::string line;
    if (!std::getline(is, line)) {
        err = "empty CSV";
        return rows;
    }
    const std::vector<std::string> header = splitCsvLine(line);
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() != header.size()) {
            err = "row with " + std::to_string(fields.size()) +
                  " fields, header has " +
                  std::to_string(header.size());
            return rows;
        }
        Row r;
        for (std::size_t i = 0; i < header.size(); ++i)
            r.cols[header[i]] = unquote(fields[i]);
        rows.push_back(std::move(r));
    }
    return rows;
}

struct FailureEntry
{
    std::string label;
    std::string failureKind;
    std::string attempts;
};

/**
 * Pull label/failureKind/attempts out of a failures.json report.
 * Tolerant scanner, not a full JSON parser: the report's shape is
 * fixed (writeFailureReport), one object per failed run.
 */
std::vector<FailureEntry>
parseFailuresJson(const std::string &doc)
{
    std::vector<FailureEntry> out;
    auto stringAfter = [&](std::size_t from, const char *key,
                           std::size_t end) -> std::string {
        const std::string k = std::string("\"") + key + "\":";
        std::size_t p = doc.find(k, from);
        if (p == std::string::npos || p >= end)
            return "";
        p += k.size();
        if (p >= doc.size())
            return "";
        if (doc[p] == '"') {
            std::string v;
            for (std::size_t i = p + 1; i < doc.size(); ++i) {
                if (doc[i] == '\\' && i + 1 < doc.size()) {
                    v.push_back(doc[++i]);
                } else if (doc[i] == '"') {
                    break;
                } else {
                    v.push_back(doc[i]);
                }
            }
            return v;
        }
        std::string v;
        while (p < doc.size() &&
               (std::isdigit(static_cast<unsigned char>(doc[p]))))
            v.push_back(doc[p++]);
        return v;
    };
    std::size_t pos = 0;
    for (;;) {
        std::size_t p = doc.find("{\"label\":", pos);
        if (p == std::string::npos)
            break;
        std::size_t end = doc.find('}', p);
        if (end == std::string::npos)
            end = doc.size();
        FailureEntry e;
        e.label = stringAfter(p, "label", end);
        e.failureKind = stringAfter(p, "failureKind", end);
        e.attempts = stringAfter(p, "attempts", end);
        out.push_back(std::move(e));
        pos = end;
    }
    return out;
}

struct BenchEntry
{
    std::string label;
    /**
     * Row flavor since bench schema 2: "scheduler" (event vs polling
     * full runs) or "smtick" (Sm::tick microbench, reference scan vs
     * SoA+mask path reusing the pollingSec/eventSec keys). Schema-1
     * artifacts carry no kind; those rows are all scheduler rows.
     */
    std::string kind;
    std::string simTicks;
    std::string pollingSec;
    std::string eventSec;
    std::string speedup;
};

/**
 * Pull the per-workload timings out of a perf_core BENCH_core.json.
 * Same tolerant scanning approach as parseFailuresJson: the
 * artifact's shape is fixed, one object per workload.
 */
std::vector<BenchEntry>
parseBenchJson(const std::string &doc)
{
    std::vector<BenchEntry> out;
    auto valueAfter = [&](std::size_t from, const char *key,
                          std::size_t end) -> std::string {
        const std::string k = std::string("\"") + key + "\": ";
        std::size_t p = doc.find(k, from);
        if (p == std::string::npos || p >= end)
            return "";
        p += k.size();
        if (p < doc.size() && doc[p] == '"') {
            std::string v;
            for (std::size_t i = p + 1;
                 i < doc.size() && doc[i] != '"'; ++i)
                v.push_back(doc[i]);
            return v;
        }
        std::string v;
        while (p < doc.size() &&
               (std::isdigit(static_cast<unsigned char>(doc[p])) ||
                doc[p] == '.' || doc[p] == '-' || doc[p] == '+' ||
                doc[p] == 'e'))
            v.push_back(doc[p++]);
        return v;
    };
    std::size_t pos = 0;
    for (;;) {
        std::size_t p = doc.find("{\"label\":", pos);
        if (p == std::string::npos)
            break;
        std::size_t end = doc.find('}', p);
        if (end == std::string::npos)
            end = doc.size();
        BenchEntry e;
        e.label = valueAfter(p, "label", end);
        e.kind = valueAfter(p, "kind", end);
        if (e.kind.empty())
            e.kind = "scheduler"; // schema-1 rows
        e.simTicks = valueAfter(p, "simTicks", end);
        e.pollingSec = valueAfter(p, "pollingSec", end);
        e.eventSec = valueAfter(p, "eventSec", end);
        e.speedup = valueAfter(p, "speedup", end);
        out.push_back(std::move(e));
        pos = end;
    }
    return out;
}

/** Print one kind's rows with its column vocabulary. */
void
printBenchTable(const std::vector<BenchEntry> &entries,
                const std::string &kind, const char *baseCol,
                const char *fastCol)
{
    std::size_t wLabel = 8;
    std::size_t count = 0;
    for (const auto &e : entries) {
        if (e.kind != kind)
            continue;
        wLabel = std::max(wLabel, e.label.size());
        ++count;
    }
    if (!count)
        return;
    std::printf("%-*s %12s %12s %12s %8s\n",
                static_cast<int>(wLabel), "workload", "sim ticks",
                baseCol, fastCol, "speedup");
    double worst = 0;
    bool first = true;
    for (const auto &e : entries) {
        if (e.kind != kind)
            continue;
        std::printf("%-*s %12s %12s %12s %7sx\n",
                    static_cast<int>(wLabel), e.label.c_str(),
                    e.simTicks.c_str(), e.pollingSec.c_str(),
                    e.eventSec.c_str(), e.speedup.c_str());
        const double s = std::atof(e.speedup.c_str());
        if (first || s < worst) {
            worst = s;
            first = false;
        }
    }
    std::printf("%zu %s workloads, worst speedup %.2fx\n\n", count,
                kind.c_str(), worst);
}

/**
 * Print a perf_core artifact: the scheduler-speedup table, then the
 * Sm::tick microbench table when the artifact carries smtick rows
 * (bench schema 2+).
 */
void
printBench(const std::vector<BenchEntry> &entries)
{
    printBenchTable(entries, "scheduler", "polling s", "event s");
    printBenchTable(entries, "smtick", "reference s", "soa s");
}

/** One device slice of a sharded run, from the dev<k>_* columns. */
struct DeviceSlice
{
    std::string gpuEdgeWork;
    std::string rawExpanded;
    std::string scuFiltered;
    std::string scuBusyCycles;
    std::string filterHitRate;
};

/**
 * Extract the per-device slices a multi-device run wrote into its
 * CSV row. Single-device rows (and rows from a pre-sharding schema,
 * which lack the columns entirely) yield an empty vector.
 */
std::vector<DeviceSlice>
deviceSlices(const Row &r)
{
    std::vector<DeviceSlice> out;
    for (unsigned d = 0;; ++d) {
        const std::string pre = "dev" + std::to_string(d) + "_";
        if (r.get(pre + "gpuEdgeWork").empty())
            break;
        DeviceSlice s;
        s.gpuEdgeWork = r.get(pre + "gpuEdgeWork");
        s.rawExpanded = r.get(pre + "rawExpanded");
        s.scuFiltered = r.get(pre + "scuFiltered");
        s.scuBusyCycles = r.get(pre + "scuBusyCycles");
        s.filterHitRate = r.get(pre + "filterHitRate");
        out.push_back(std::move(s));
    }
    return out;
}

/**
 * Print the sharded view: one aggregate row per run, then one
 * indented row per device slice where the run recorded any.
 */
void
printByDevice(const std::vector<Row> &rows)
{
    std::size_t wLabel = 8;
    for (const auto &r : rows)
        wLabel = std::max(wLabel, r.get("label").size());
    std::printf("%-*s %4s %12s %12s %12s %8s %9s %10s\n",
                static_cast<int>(wLabel), "label", "dev", "edgeWork",
                "expanded", "filtered", "hitRate", "icn msgs",
                "icn bytes");
    for (const auto &r : rows) {
        const std::string &devCount = r.get("deviceCount");
        const double raw = std::atof(r.get("rawExpanded").c_str());
        const double flt = std::atof(r.get("scuFiltered").c_str());
        std::printf("%-*s %4s %12s %12s %12s %8.3f %9s %10s\n",
                    static_cast<int>(wLabel),
                    r.get("label").c_str(),
                    devCount.empty() ? "1" : devCount.c_str(),
                    r.get("gpuEdgeWork").c_str(),
                    r.get("rawExpanded").c_str(),
                    r.get("scuFiltered").c_str(),
                    raw > 0 ? flt / raw : 0.0,
                    r.get("icnMessages").c_str(),
                    r.get("icnBytes").c_str());
        const auto slices = deviceSlices(r);
        for (std::size_t d = 0; d < slices.size(); ++d) {
            const std::string tag =
                "  d" + std::to_string(d);
            std::printf("%-*s %4s %12s %12s %12s %8.3f %9s %10s\n",
                        static_cast<int>(wLabel), tag.c_str(), "-",
                        slices[d].gpuEdgeWork.c_str(),
                        slices[d].rawExpanded.c_str(),
                        slices[d].scuFiltered.c_str(),
                        std::atof(slices[d].filterHitRate.c_str()),
                        "-", "-");
        }
    }
    std::printf("\n%zu runs\n", rows.size());
}

/** Print the per-run trend table and summary for @p rows. */
void
printTrend(const std::vector<Row> &rows)
{
    std::size_t wLabel = 5;
    for (const auto &r : rows)
        wLabel = std::max(wLabel, r.get("label").size());
    std::printf("%-*s  %-5s %-9s %-8s %12s %10s\n",
                static_cast<int>(wLabel), "label", "ok",
                "failure", "attempts", "cycles", "seconds");
    std::size_t failures = 0, retried = 0;
    for (const auto &r : rows) {
        const bool ok = r.get("ok") == "true";
        failures += !ok;
        retried += r.get("attempts") != "1";
        std::printf("%-*s  %-5s %-9s %-8s %12s %10s\n",
                    static_cast<int>(wLabel),
                    r.get("label").c_str(), r.get("ok").c_str(),
                    ok ? "-" : r.get("failureKind").c_str(),
                    r.get("attempts").c_str(),
                    r.get("totalCycles").c_str(),
                    r.get("seconds").c_str());
    }
    std::printf("\n%zu runs, %zu failed, %zu retried\n", rows.size(),
                failures, retried);
}

/**
 * Cross-check the CSV rows against the failures.json entries.
 * Returns the number of disagreements (0 = consistent), printing
 * one line per problem.
 */
std::size_t
checkConsistency(const std::vector<Row> &rows,
                 const std::vector<FailureEntry> &fails)
{
    std::size_t bad = 0;
    std::map<std::string, const FailureEntry *> byLabel;
    for (const auto &f : fails)
        byLabel[f.label] = &f;

    for (const auto &r : rows) {
        const std::string &label = r.get("label");
        const bool ok = r.get("ok") == "true";
        auto it = byLabel.find(label);
        if (ok) {
            if (it != byLabel.end()) {
                std::printf("MISMATCH %s: ok in CSV but reported in "
                            "failures.json\n", label.c_str());
                ++bad;
            }
            continue;
        }
        if (it == byLabel.end()) {
            std::printf("MISMATCH %s: failed in CSV (%s) but absent "
                        "from failures.json\n", label.c_str(),
                        r.get("failureKind").c_str());
            ++bad;
            continue;
        }
        if (it->second->failureKind != r.get("failureKind")) {
            std::printf("MISMATCH %s: failureKind '%s' (CSV) vs "
                        "'%s' (failures.json)\n", label.c_str(),
                        r.get("failureKind").c_str(),
                        it->second->failureKind.c_str());
            ++bad;
        }
        if (it->second->attempts != r.get("attempts")) {
            std::printf("MISMATCH %s: attempts %s (CSV) vs %s "
                        "(failures.json)\n", label.c_str(),
                        r.get("attempts").c_str(),
                        it->second->attempts.c_str());
            ++bad;
        }
        byLabel.erase(it);
    }
    for (const auto &[label, f] : byLabel) {
        std::printf("MISMATCH %s: in failures.json but not in the "
                    "CSV\n", label.c_str());
        ++bad;
    }
    return bad;
}

int
selfTest()
{
    int failed = 0;
    auto expect = [&](bool cond, const char *what) {
        if (!cond) {
            std::printf("self-test FAILED: %s\n", what);
            ++failed;
        }
    };

    const std::string csv =
        "label,ok,failureKind,attempts,totalCycles,seconds\n"
        "\"BFS/GTX980/cond/gpu-only\",true,\"\",1,123,0.5\n"
        "\"BFS/TX1/cond/scu-enhanced\",false,\"Runaway\",1,0,0\n"
        "\"PR/TX1/cond/scu-basic\",false,\"Timeout\",3,0,0\n";
    std::istringstream is(csv);
    std::string err;
    auto rows = parseCsv(is, err);
    expect(err.empty(), "CSV parses clean");
    expect(rows.size() == 3, "three CSV rows");
    expect(rows[0].get("label") == "BFS/GTX980/cond/gpu-only",
           "label unquoted");
    expect(rows[1].get("failureKind") == "Runaway",
           "failureKind surfaced");
    expect(rows[2].get("attempts") == "3", "attempts surfaced");

    const std::string good =
        "{\"failures\":[\n"
        "  {\"label\":\"BFS/TX1/cond/scu-enhanced\","
        "\"failureKind\":\"Runaway\",\"error\":\"x\","
        "\"attempts\":1,\"diagnostics\":\"\"},\n"
        "  {\"label\":\"PR/TX1/cond/scu-basic\","
        "\"failureKind\":\"Timeout\",\"error\":\"y\","
        "\"attempts\":3,\"diagnostics\":\"\"}\n]}\n";
    auto fails = parseFailuresJson(good);
    expect(fails.size() == 2, "two failure entries");
    expect(checkConsistency(rows, fails) == 0,
           "consistent artifacts check clean");

    // Disagreeing kind, missing entry, spurious entry: 3 problems.
    const std::string bad =
        "{\"failures\":[\n"
        "  {\"label\":\"BFS/TX1/cond/scu-enhanced\","
        "\"failureKind\":\"Deadlock\",\"error\":\"x\","
        "\"attempts\":1,\"diagnostics\":\"\"},\n"
        "  {\"label\":\"SSSP/TX1/cond/scu-basic\","
        "\"failureKind\":\"Panic\",\"error\":\"z\","
        "\"attempts\":1,\"diagnostics\":\"\"}\n]}\n";
    expect(checkConsistency(rows, parseFailuresJson(bad)) == 3,
           "inconsistent artifacts counted");

    // perf_core artifact parsing (--bench mode).
    const std::string bench =
        "{\n  \"bench\": \"perf_core\",\n  \"schema\": 1,\n"
        "  \"scale\": 0.05,\n  \"workloads\": [\n"
        "    {\"label\": \"BFS/GTX980/delaunay/gpu-only@0.02\", "
        "\"simTicks\": 1938563, \"pollingSec\": 0.117000, "
        "\"eventSec\": 0.051000, \"speedup\": 2.294, "
        "\"eventTicksPerSec\": 38011039},\n"
        "    {\"label\": \"PR/GTX980/cond/scu-basic@0.05\", "
        "\"simTicks\": 107282, \"pollingSec\": 0.020000, "
        "\"eventSec\": 0.018000, \"speedup\": 1.111, "
        "\"eventTicksPerSec\": 5960111}\n  ]\n}\n";
    auto entries = parseBenchJson(bench);
    expect(entries.size() == 2, "two bench workloads");
    expect(entries[0].label == "BFS/GTX980/delaunay/gpu-only@0.02",
           "bench label surfaced");
    expect(entries[0].simTicks == "1938563",
           "bench simTicks surfaced");
    expect(entries[1].speedup == "1.111", "bench speedup surfaced");
    expect(entries[1].eventSec == "0.018000",
           "bench eventSec surfaced");
    expect(parseBenchJson("{}").empty(),
           "workload-free bench JSON parses empty");
    expect(entries[0].kind == "scheduler" &&
               entries[1].kind == "scheduler",
           "schema-1 rows default to the scheduler kind");

    // Schema-2 artifacts tag each row with a kind; smtick rows reuse
    // the pollingSec/eventSec keys for reference/soa seconds.
    const std::string bench2 =
        "{\n  \"bench\": \"perf_core\",\n  \"schema\": 2,\n"
        "  \"scale\": 0.05,\n  \"workloads\": [\n"
        "    {\"label\": \"BFS/GTX980/cond/gpu-only@0.05\", "
        "\"kind\": \"scheduler\", "
        "\"simTicks\": 513203, \"pollingSec\": 0.117000, "
        "\"eventSec\": 0.051000, \"speedup\": 1.725, "
        "\"eventTicksPerSec\": 38011039},\n"
        "    {\"label\": \"smtick/allbusy-compute@16384w\", "
        "\"kind\": \"smtick\", "
        "\"simTicks\": 175233, \"pollingSec\": 0.039000, "
        "\"eventSec\": 0.023000, \"speedup\": 1.691, "
        "\"eventTicksPerSec\": 7618826}\n  ]\n}\n";
    auto entries2 = parseBenchJson(bench2);
    expect(entries2.size() == 2, "two schema-2 bench rows");
    expect(entries2[0].kind == "scheduler",
           "schema-2 scheduler kind surfaced");
    expect(entries2[1].kind == "smtick",
           "schema-2 smtick kind surfaced");
    expect(entries2[1].label == "smtick/allbusy-compute@16384w",
           "smtick label surfaced");
    expect(entries2[1].pollingSec == "0.039000",
           "smtick reference seconds surfaced");
    expect(entries2[1].eventSec == "0.023000",
           "smtick soa seconds surfaced");

    // Per-device CSV columns (--by-device mode). The second row is a
    // single-device run whose dev<k>_* cells were written empty.
    const std::string devCsv =
        "label,deviceCount,gpuEdgeWork,rawExpanded,scuFiltered,"
        "icnMessages,icnBytes,"
        "dev0_gpuEdgeWork,dev0_rawExpanded,dev0_scuFiltered,"
        "dev0_scuBusyCycles,dev0_filterHitRate,"
        "dev1_gpuEdgeWork,dev1_rawExpanded,dev1_scuFiltered,"
        "dev1_scuBusyCycles,dev1_filterHitRate\n"
        "\"BFS/GTX980/cond/scu-enhanced/dev2\",2,100,80,50,7,56,"
        "60,48,30,400,0.625,40,32,20,300,0.625\n"
        "\"BFS/GTX980/cond/scu-enhanced\",1,100,80,50,0,0,"
        ",,,,,,,,,\n";
    std::istringstream dis(devCsv);
    auto devRows = parseCsv(dis, err);
    expect(err.empty(), "per-device CSV parses clean");
    expect(devRows.size() == 2, "two per-device CSV rows");
    auto slices = deviceSlices(devRows[0]);
    expect(slices.size() == 2, "two device slices on the dev2 row");
    expect(slices.size() == 2 && slices[0].gpuEdgeWork == "60",
           "slice 0 edge work surfaced");
    expect(slices.size() == 2 && slices[1].filterHitRate == "0.625",
           "slice 1 hit rate surfaced");
    expect(deviceSlices(devRows[1]).empty(),
           "single-device row yields no slices");

    std::printf("trend self-test %s\n", failed ? "FAILED" : "OK");
    return failed ? 1 : 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--check] <artifact.csv> "
                 "[<artifact.failures.json>]\n"
                 "       %s --by-device <artifact.csv>\n"
                 "       %s --bench <BENCH_core.json>\n"
                 "       %s --self-test\n",
                 argv0, argv0, argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool benchMode = false;
    bool byDevice = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--self-test")
            return selfTest();
        if (a == "--check")
            check = true;
        else if (a == "--bench")
            benchMode = true;
        else if (a == "--by-device")
            byDevice = true;
        else if (!a.empty() && a[0] == '-')
            return usage(argv[0]);
        else
            paths.push_back(a);
    }
    if (paths.empty() || paths.size() > 2 ||
        (benchMode && (check || byDevice || paths.size() != 1)) ||
        (byDevice && (check || paths.size() != 1)))
        return usage(argv[0]);

    if (benchMode) {
        std::ifstream bs(paths[0]);
        if (!bs) {
            std::fprintf(stderr, "cannot read '%s'\n",
                         paths[0].c_str());
            return 1;
        }
        std::ostringstream doc;
        doc << bs.rdbuf();
        const auto entries = parseBenchJson(doc.str());
        if (entries.empty()) {
            std::fprintf(stderr, "'%s' holds no workloads\n",
                         paths[0].c_str());
            return 1;
        }
        printBench(entries);
        return 0;
    }

    std::ifstream is(paths[0]);
    if (!is) {
        std::fprintf(stderr, "cannot read '%s'\n", paths[0].c_str());
        return 1;
    }
    std::string err;
    const auto rows = parseCsv(is, err);
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", paths[0].c_str(),
                     err.c_str());
        return 1;
    }
    if (byDevice) {
        printByDevice(rows);
        return 0;
    }
    printTrend(rows);
    if (!check)
        return 0;

    // Default the report path: <artifact>.csv -> <artifact>.failures.json
    std::string failPath = paths.size() == 2 ? paths[1] : paths[0];
    if (paths.size() == 1) {
        const std::string suffix = ".csv";
        if (failPath.size() > suffix.size() &&
            failPath.compare(failPath.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
            failPath.resize(failPath.size() - suffix.size());
        failPath += ".failures.json";
    }

    std::vector<FailureEntry> fails;
    std::ifstream fs(failPath);
    if (fs) {
        std::ostringstream doc;
        doc << fs.rdbuf();
        fails = parseFailuresJson(doc.str());
    } else {
        // No report file is only consistent with a failure-free CSV.
        std::printf("note: no failure report at '%s'\n",
                    failPath.c_str());
    }
    const std::size_t bad = checkConsistency(rows, fails);
    if (bad) {
        std::printf("%zu inconsistencies between '%s' and '%s'\n",
                    bad, paths[0].c_str(), failPath.c_str());
        return 1;
    }
    std::printf("CSV and failure report agree\n");
    return 0;
}
